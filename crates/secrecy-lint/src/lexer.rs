//! A small self-contained Rust lexer.
//!
//! Produces a flat token stream with line numbers plus the `// secrecy:`
//! and `// sync:` control comments the analysis layers consume (the taint
//! pass reads the `secrecy` namespace, the concurrency pass reads the
//! `sync` namespace). It understands exactly as
//! much Rust as the taint pass needs: identifiers, literals (including raw
//! strings and char-vs-lifetime disambiguation), nested block comments and
//! multi-character operators. It does **not** try to be a conforming lexer
//! — unknown bytes become single-character operator tokens.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident(String),
    /// Numeric literal, verbatim.
    Num(String),
    /// String literal *content* (quotes and raw-string hashes stripped,
    /// escapes left as written). Needed to find `{ident}` inline captures
    /// in format strings.
    Str(String),
    /// Character literal (content irrelevant to the analysis).
    Char,
    /// Lifetime such as `'a` (name irrelevant to the analysis).
    Lifetime,
    /// Operator / punctuation; multi-character operators are merged
    /// (`::`, `->`, `=>`, `==`, `&&`, `+=`, …).
    Op(&'static str),
    /// Opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Directive namespace: which analysis pass a control comment addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ns {
    /// `// secrecy: …` — consumed by the taint pass.
    Secrecy,
    /// `// sync: …` — consumed by the concurrency pass.
    Sync,
}

impl Ns {
    /// The comment prefix, e.g. `secrecy`.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            Ns::Secrecy => "secrecy",
            Ns::Sync => "sync",
        }
    }
}

/// A `// secrecy: …` or `// sync: …` control comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Which pass the directive addresses.
    pub ns: Ns,
    /// Text after the `<ns>:` prefix, trimmed
    /// (e.g. `allow(secret-index, "…")`).
    pub body: String,
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Single-character operators the lexer knows; kept as `&'static str` so
/// [`TokKind::Op`] needs no allocation.
const SINGLE_OPS: &[&str] = &[
    "+", "-", "*", "/", "%", "^", "&", "|", "!", "=", "<", ">", ".", ",", ";", ":", "#", "?", "@",
    "~", "$",
];

fn single_op(c: char) -> &'static str {
    for op in SINGLE_OPS {
        if op.as_bytes()[0] as char == c {
            return op;
        }
    }
    // Unknown punctuation — map to "?" so the stream stays well-formed.
    "?"
}

/// Lexes `src`, returning the token stream and any `// secrecy:` /
/// `// sync:` control comments.
#[must_use]
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Directive>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                for ns in [Ns::Secrecy, Ns::Sync] {
                    let tag = format!("{}:", ns.prefix());
                    if let Some(pos) = text.find(&tag) {
                        comments.push(Directive {
                            line,
                            ns,
                            body: text[pos + tag.len()..].trim().to_string(),
                        });
                        break;
                    }
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (content, ni, nl) = lex_string(src, i + 1, line);
                toks.push(Tok { kind: TokKind::Str(content), line });
                i = ni;
                line = nl;
            }
            'r' | 'b' if is_raw_or_byte_string(b, i) => {
                let (content, ni, nl) = lex_raw_or_byte(src, i, line);
                toks.push(Tok { kind: TokKind::Str(content), line });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime iff a name char follows and the char after the
                // name run is not a closing quote.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j > i + 1 && (j >= b.len() || b[j] != b'\'') {
                    toks.push(Tok { kind: TokKind::Lifetime, line });
                    i = j;
                } else {
                    // Char literal: consume to closing quote, honouring \.
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    toks.push(Tok { kind: TokKind::Char, line });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but not a `..` range.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                toks.push(Tok { kind: TokKind::Num(src[start..i].to_string()), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Ident(src[start..i].to_string()), line });
            }
            '(' | '[' | '{' => {
                toks.push(Tok { kind: TokKind::Open(c), line });
                i += 1;
            }
            ')' | ']' | '}' => {
                toks.push(Tok { kind: TokKind::Close(c), line });
                i += 1;
            }
            _ => {
                let mut matched = None;
                for op in MULTI_OPS {
                    if src[i..].starts_with(op) {
                        matched = Some(*op);
                        break;
                    }
                }
                if let Some(op) = matched {
                    toks.push(Tok { kind: TokKind::Op(op), line });
                    i += op.len();
                } else {
                    toks.push(Tok { kind: TokKind::Op(single_op(c)), line });
                    i += 1;
                }
            }
        }
    }
    (toks, comments)
}

fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, br"…", b"…"  — but NOT identifiers starting with r/b.
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") || rest.starts_with(b"b\"") {
        return true;
    }
    rest.starts_with(b"br\"") || rest.starts_with(b"br#")
}

/// Lexes a plain string body starting *after* the opening quote.
fn lex_string(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        if b[i] == b'\\' {
            i += 2;
        } else if b[i] == b'"' {
            return (src[start..i].to_string(), i + 1, line);
        } else {
            if b[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }
    }
    (src[start..i.min(src.len())].to_string(), i, line)
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at the prefix.
fn lex_raw_or_byte(src: &str, mut i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    let start = i;
    let closer: Vec<u8> = std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
    while i < b.len() {
        if hashes == 0 && b[i] == b'\\' {
            i += 2;
            continue;
        }
        if b[i..].starts_with(&closer) {
            return (src[start..i].to_string(), i + closer.len(), line);
        }
        if b[i] == b'\n' {
            line += 1;
        }
        i += 1;
    }
    (src[start..i.min(src.len())].to_string(), i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(src: &str) -> Vec<TokKind> {
        lex(src).0.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn merges_multi_char_ops() {
        assert_eq!(
            ops("a == b && c"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Op("=="),
                TokKind::Ident("b".into()),
                TokKind::Op("&&"),
                TokKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(ops("'a 'x' '\\n'"), vec![TokKind::Lifetime, TokKind::Char, TokKind::Char]);
    }

    #[test]
    fn captures_secrecy_comments() {
        let (_, comments) = lex("let x = 1; // secrecy: allow(secret-index, \"why\")\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[0].ns, Ns::Secrecy);
        assert!(comments[0].body.starts_with("allow(secret-index"));
    }

    #[test]
    fn captures_sync_comments() {
        let (_, comments) =
            lex("// plain comment\nfn f() {} // sync: allow(guard-escape, \"facade\")\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert_eq!(comments[0].ns, Ns::Sync);
        assert!(comments[0].body.starts_with("allow(guard-escape"));
    }

    #[test]
    fn raw_strings_and_lines() {
        let (toks, _) = lex("r#\"a \" b\"# x\ny");
        assert_eq!(toks[0].kind, TokKind::Str("a \" b".into()));
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        assert_eq!(
            ops("0x1f_u64 1.5 2..3"),
            vec![
                TokKind::Num("0x1f_u64".into()),
                TokKind::Num("1.5".into()),
                TokKind::Num("2".into()),
                TokKind::Op(".."),
                TokKind::Num("3".into()),
            ]
        );
    }
}
