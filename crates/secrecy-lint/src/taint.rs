//! Function extraction and the taint analysis itself.
//!
//! The pass is deliberately *flow-insensitive* and *over-approximating*:
//! a variable once tainted stays tainted for the whole function, and any
//! operation mixing a tainted value taints its result unless a declared
//! sanitizer intervenes. False positives are expected and are resolved
//! in-tree with `// secrecy: allow(rule, "reason")` annotations, which the
//! driver verifies are (a) well-formed and (b) actually used.

use crate::lexer::TokKind;
use crate::model::{Rule, Violation};
use crate::tree::Tree;
use std::collections::{HashMap, HashSet};

/// What the analysis treats as secret, public, and neutralizing.
#[derive(Debug, Clone)]
pub struct Config {
    /// Type-name substrings: a parameter (or `self` of an impl) whose type
    /// string contains one of these is a taint source.
    pub secret_types: Vec<String>,
    /// Field / method names whose *access* yields a secret even on an
    /// otherwise-public carrier (e.g. `OtChoice::choice`).
    pub secret_fields: Vec<String>,
    /// Free functions / methods whose return value is always secret.
    pub secret_fns: Vec<String>,
    /// Extra per-function parameter seeds, for share-bearing plain-typed
    /// parameters (`&[u64]`, `RingTensor`, `u64` exponents) the type system
    /// cannot mark: `(fn_name, [param, …])`.
    pub secret_fn_params: Vec<(String, Vec<String>)>,
    /// Methods whose result is public metadata even on a secret receiver
    /// (`len`, `ring`, `shape`, …).
    pub sanitizers: Vec<String>,
    /// Methods whose result is public because it came off the wire: by the
    /// 2PC model, everything received is part of the peer-visible
    /// transcript and is already masked.
    pub publicizers: Vec<String>,
    /// Container methods that write their arguments into the receiver
    /// (`push`, `extend`, …) — a tainted argument taints the receiver.
    pub mutators: Vec<String>,
    /// Allocation-sizing calls checked by [`Rule::SecretAlloc`].
    pub alloc_fns: Vec<String>,
}

impl Config {
    /// The AQ2PNN workspace configuration.
    #[must_use]
    pub fn aq2pnn() -> Self {
        let s = |xs: &[&str]| xs.iter().map(|x| (*x).to_string()).collect::<Vec<_>>();
        Config {
            secret_types: s(&[
                "AShare",
                "BShare",
                "DaBitShare",
                "TripleShare",
                "BitGroup",
                "SignFlags",
                "Garbled",
                "InputLabels",
                "LabelTable",
            ]),
            secret_fields: s(&["choice"]),
            secret_fns: s(&[
                "next_matmul_triple",
                "next_expanded_triple",
                "next_elementwise_triple",
                "e2l",
            ]),
            secret_fn_params: vec![
                ("ring_matmul".into(), vec!["a".into(), "b".into()]),
                ("ring_matmul_reference".into(), vec!["a".into(), "b".into()]),
                ("pow".into(), vec!["b".into(), "e".into()]),
                ("pow_g".into(), vec!["e".into()]),
                ("mod_pow".into(), vec!["b".into(), "e".into()]),
                ("unpack_bits_at".into(), vec!["index".into()]),
                ("split_groups".into(), vec!["x".into()]),
                ("split_groups_into".into(), vec!["x".into()]),
                ("sign_flag".into(), vec!["sign_cmp".into(), "code1".into(), "tail".into()]),
                ("sign_from_codes".into(), vec!["codes".into()]),
            ],
            sanitizers: s(&[
                "len",
                "is_empty",
                "ring",
                "shape",
                "bits",
                "mask",
                "order",
                "element_bits",
                "capacity",
                "count",
                "table_bytes",
                "width",
            ]),
            publicizers: s(&["recv", "recv_bits"]),
            mutators: s(&[
                "push",
                "extend",
                "extend_from_slice",
                "insert",
                "push_back",
                "copy_from_slice",
                "fill",
                "clone_from_slice",
            ]),
            alloc_fns: s(&["with_capacity", "reserve", "reserve_exact"]),
        }
    }

    fn is_secret_type(&self, ty: &str) -> bool {
        self.secret_types.iter().any(|s| ty.contains(s.as_str()))
    }

    fn extra_params(&self, fn_name: &str) -> Option<&[String]> {
        self.secret_fn_params.iter().find(|(n, _)| n == fn_name).map(|(_, ps)| ps.as_slice())
    }
}

/// A function extracted for analysis.
#[derive(Debug, Clone)]
pub(crate) struct FnIr {
    pub name: String,
    pub file: usize,
    /// `(binding idents, type string)` per parameter.
    pub params: Vec<(Vec<String>, String)>,
    pub body: Vec<Tree>,
    /// Whether the enclosing `impl` type is a secret carrier.
    pub self_secret: bool,
    /// `// secrecy: declassify` applies — skip analysis entirely.
    pub declassified: bool,
}

/// Extracts functions and derive-level violations from a file's trees.
pub(crate) fn extract(
    trees: &[Tree],
    file: usize,
    file_name: &str,
    cfg: &Config,
    declassify_lines: &[u32],
    fns: &mut Vec<FnIr>,
    viols: &mut Vec<Violation>,
) {
    extract_in(trees, file, file_name, cfg, declassify_lines, None, fns, viols);
}

#[allow(clippy::too_many_arguments)]
fn extract_in(
    trees: &[Tree],
    file: usize,
    file_name: &str,
    cfg: &Config,
    declassify_lines: &[u32],
    self_ty: Option<&str>,
    fns: &mut Vec<FnIr>,
    viols: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    let mut attrs: Vec<(String, u32)> = Vec::new();
    while i < trees.len() {
        let t = &trees[i];
        if t.is_op("#") {
            match trees.get(i + 1) {
                Some(g) if g.group('[').is_some() => {
                    attrs.push((g.text(), g.line()));
                    i += 2;
                    continue;
                }
                Some(bang) if bang.is_op("!") => {
                    i += 3; // inner attribute `#![…]` — ignore
                    continue;
                }
                _ => {}
            }
        }
        match t.ident() {
            Some("mod") => {
                let is_test = attrs.iter().any(|(a, _)| a.contains("cfg") && a.contains("test"));
                attrs.clear();
                // `mod name { … }` or `mod name;`
                let mut j = i + 1;
                while j < trees.len() && trees[j].group('{').is_none() && !trees[j].is_op(";") {
                    j += 1;
                }
                if let Some(items) = trees.get(j).and_then(|g| g.group('{')) {
                    if !is_test {
                        extract_in(items, file, file_name, cfg, declassify_lines, None, fns, viols);
                    }
                }
                i = j + 1;
            }
            Some("impl") | Some("trait") => {
                let is_test = attrs.iter().any(|(a, _)| a.contains("cfg") && a.contains("test"));
                attrs.clear();
                let mut j = i + 1;
                let mut after_for: Option<String> = None;
                let mut first: Option<String> = None;
                let mut saw_for = false;
                while j < trees.len() && trees[j].group('{').is_none() && !trees[j].is_op(";") {
                    if let Some(id) = trees[j].ident() {
                        if id == "for" {
                            saw_for = true;
                        } else if id == "where" {
                            break;
                        } else if saw_for && after_for.is_none() {
                            after_for = Some(id.to_string());
                        } else if first.is_none() && !saw_for {
                            first = Some(id.to_string());
                        }
                    }
                    j += 1;
                }
                while j < trees.len() && trees[j].group('{').is_none() {
                    j += 1;
                }
                let ty = after_for.or(first);
                if let Some(items) = trees.get(j).and_then(|g| g.group('{')) {
                    if !is_test {
                        extract_in(
                            items,
                            file,
                            file_name,
                            cfg,
                            declassify_lines,
                            ty.as_deref(),
                            fns,
                            viols,
                        );
                    }
                }
                i = j + 1;
            }
            Some("struct") | Some("enum") => {
                // derive(Debug) on a secret-carrying type is a sink.
                if let Some(name) = trees.get(i + 1).and_then(Tree::ident) {
                    if cfg.secret_types.iter().any(|s| s == name) {
                        for (a, line) in &attrs {
                            if a.contains("derive") && a.contains("Debug") {
                                viols.push(Violation {
                                    file: file_name.to_string(),
                                    line: *line,
                                    rule: Rule::SecretSink,
                                    message: format!(
                                        "#[derive(Debug)] on secret-carrying type `{name}`; \
                                         implement a redacting Debug and an explicit \
                                         fmt_revealed() instead"
                                    ),
                                });
                            }
                        }
                    }
                }
                attrs.clear();
                // Skip to `;` or past the first brace group.
                let mut j = i + 1;
                while j < trees.len() && trees[j].group('{').is_none() && !trees[j].is_op(";") {
                    j += 1;
                }
                i = j + 1;
            }
            Some("fn") => {
                let is_test = attrs
                    .iter()
                    .any(|(a, _)| a.contains("test") || (a.contains("cfg") && a.contains("test")));
                let sig_line = t.line();
                attrs.clear();
                let name = trees.get(i + 1).and_then(Tree::ident).unwrap_or("<anon>").to_string();
                // Parameters: first `(…)` group after the name (generics
                // contain no paren groups at this token level except in
                // `Fn(…)` bounds — skip `<…>` first to be safe).
                let mut j = i + 2;
                if trees.get(j).is_some_and(|x| x.is_op("<")) {
                    j = skip_angle(trees, j);
                }
                while j < trees.len() && trees[j].group('(').is_none() {
                    j += 1;
                }
                let params =
                    trees.get(j).and_then(|g| g.group('(')).map(parse_params).unwrap_or_default();
                // Body: first `{…}` group after the params; `;` means a
                // trait declaration with no body.
                let mut k = j + 1;
                while k < trees.len() && trees[k].group('{').is_none() && !trees[k].is_op(";") {
                    k += 1;
                }
                if let Some(body) = trees.get(k).and_then(|g| g.group('{')) {
                    let body_line = trees[k].line();
                    if !is_test {
                        let declassified = declassify_lines
                            .iter()
                            .any(|l| *l + 3 >= sig_line && *l <= body_line + 1);
                        fns.push(FnIr {
                            name,
                            file,
                            params,
                            body: body.to_vec(),
                            self_secret: self_ty.is_some_and(|ty| cfg.is_secret_type(ty)),
                            declassified,
                        });
                    }
                    i = k + 1;
                } else {
                    i = k + 1;
                }
            }
            _ => {
                // Visibility and qualifier tokens sit between attributes
                // and the item keyword — keep pending attrs across them.
                let transparent = matches!(
                    t.ident(),
                    Some("pub" | "crate" | "unsafe" | "async" | "const" | "extern" | "default")
                ) || t.group('(').is_some()
                    || matches!(t, Tree::Leaf(tok) if matches!(tok.kind, TokKind::Str(_)));
                if !transparent && !t.is_op("#") {
                    attrs.clear();
                }
                i += 1;
            }
        }
    }
}

/// Skips a `<…>` run starting at the `<`, counting `>>` as two closers.
fn skip_angle(trees: &[Tree], lt: usize) -> usize {
    let mut depth = 0i32;
    let mut j = lt;
    while j < trees.len() {
        if trees[j].is_op("<") || trees[j].is_op("<<") {
            depth += if trees[j].is_op("<<") { 2 } else { 1 };
        } else if trees[j].is_op(">") || trees[j].is_op(">>") {
            depth -= if trees[j].is_op(">>") { 2 } else { 1 };
            if depth <= 0 {
                return j + 1;
            }
        } else if trees[j].is_op(";") {
            return j; // malformed — bail out
        }
        j += 1;
    }
    j
}

/// Splits a parameter group into `(binding idents, type string)` pairs.
fn parse_params(items: &[Tree]) -> Vec<(Vec<String>, String)> {
    let mut out = Vec::new();
    for param in split_top(items, ",") {
        if param.is_empty() {
            continue;
        }
        // Find the top-level `:` separating pattern from type. `self`
        // params have none.
        let colon = param.iter().position(|t| t.is_op(":"));
        let (pat, ty) = match colon {
            Some(c) => (&param[..c], &param[c + 1..]),
            None => (param, &param[0..0]),
        };
        let mut names = Vec::new();
        pattern_idents(pat, &mut names);
        let ty_s = ty.iter().map(Tree::text).collect::<Vec<_>>().join(" ");
        out.push((names, ty_s));
    }
    out
}

/// Splits a tree run on a top-level operator.
fn split_top<'a>(items: &'a [Tree], op: &str) -> Vec<&'a [Tree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, t) in items.iter().enumerate() {
        if t.is_op(op) {
            out.push(&items[start..i]);
            start = i + 1;
        }
    }
    out.push(&items[start..]);
    out
}

const KEYWORDS: &[&str] = &[
    "mut", "ref", "box", "if", "in", "as", "dyn", "impl", "self", "Self", "move", "let", "else",
    "true", "false",
];

/// Collects binding identifiers from a pattern: lowercase/underscore-led
/// idents, recursing into groups. Type and variant names (CamelCase) are
/// skipped so `ReluMode::Lazy => …` does not shadow-taint.
pub(crate) fn pattern_idents(items: &[Tree], out: &mut Vec<String>) {
    for t in items {
        match t {
            Tree::Leaf(tok) => {
                if let TokKind::Ident(s) = &tok.kind {
                    let lead = s.chars().next().unwrap_or('_');
                    if (lead.is_ascii_lowercase() || lead == '_') && !KEYWORDS.contains(&s.as_str())
                    {
                        out.push(s.clone());
                    }
                }
            }
            Tree::Group { items, .. } => pattern_idents(items, out),
        }
    }
}

/// Cross-function summary: does the return value carry taint?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Summary {
    /// Return is tainted when any argument is.
    ret_if_arg: bool,
    /// Return is tainted regardless of arguments (internal secret source).
    ret_always: bool,
}

/// The workspace-level analysis driver.
pub(crate) struct Analyzer<'c> {
    cfg: &'c Config,
    summaries: HashMap<String, Summary>,
    /// Per-file summaries, preferred over the bare-name merge at call
    /// sites in the same file: a plaintext `forward` in the reference
    /// crate must not inherit taint from the 2PC engine's `forward`.
    file_summaries: HashMap<(usize, String), Summary>,
}

impl<'c> Analyzer<'c> {
    pub fn new(cfg: &'c Config) -> Self {
        let mut summaries = HashMap::new();
        for f in &cfg.secret_fns {
            summaries.insert(f.clone(), Summary { ret_if_arg: true, ret_always: true });
        }
        Analyzer { cfg, summaries, file_summaries: HashMap::new() }
    }

    /// Runs the global fixpoint over `fns`, then a recording pass that
    /// returns all violations.
    pub fn run(&mut self, fns: &[FnIr], file_names: &[String]) -> Vec<Violation> {
        // Pre-register every definition so same-file resolution never
        // falls back to the bare-name merge mid-fixpoint: without this, a
        // function summarized before its same-file callee would pick up
        // another file's identically-named (and possibly secret) impl, and
        // the monotone merge would bake that over-approximation in.
        for f in fns {
            self.file_summaries.entry((f.file, f.name.clone())).or_default();
        }
        // Fixpoint on summaries (cap the iteration count; monotone, so it
        // converges quickly — secret sources only ever spread).
        for _ in 0..6 {
            let mut changed = false;
            for f in fns {
                let s = self.summarize(f);
                let prev = self.summaries.get(&f.name).copied().unwrap_or_default();
                let merged = Summary {
                    ret_if_arg: prev.ret_if_arg || s.ret_if_arg,
                    ret_always: prev.ret_always || s.ret_always,
                };
                if merged != prev {
                    self.summaries.insert(f.name.clone(), merged);
                    changed = true;
                }
                let fkey = (f.file, f.name.clone());
                let fprev = self.file_summaries.get(&fkey).copied().unwrap_or_default();
                let fmerged = Summary {
                    ret_if_arg: fprev.ret_if_arg || s.ret_if_arg,
                    ret_always: fprev.ret_always || s.ret_always,
                };
                if fmerged != fprev {
                    self.file_summaries.insert(fkey, fmerged);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut viols = Vec::new();
        for f in fns {
            if f.declassified {
                continue;
            }
            let mut pass = FnPass::new(self, &file_names[f.file], f.file, true);
            pass.seed(f, false, true);
            pass.stabilize(&f.body);
            // Dedup within the function: the same construct may be walked
            // more than once when control-flow nests.
            let mut seen = HashSet::new();
            for v in pass.viols {
                if seen.insert((v.line, v.rule, v.message.clone())) {
                    viols.push(v);
                }
            }
        }
        viols.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        viols
    }

    /// Names whose summary says "returns secret regardless of arguments"
    /// — a debugging hook for diagnosing taint cascades.
    pub fn ret_always_names(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.summaries.iter().filter(|(_, s)| s.ret_always).map(|(n, _)| n.clone()).collect();
        v.sort();
        v
    }

    fn summarize(&self, f: &FnIr) -> Summary {
        if f.declassified {
            return Summary::default();
        }
        // ret_always: analyze with only the type-declared secret seeds.
        let mut pass = FnPass::new(self, "", f.file, false);
        pass.seed(f, false, false);
        let ret_always = pass.stabilize(&f.body);
        // ret_if_arg: analyze with every parameter tainted.
        let mut pass = FnPass::new(self, "", f.file, false);
        pass.seed(f, true, false);
        let ret_if_arg = pass.stabilize(&f.body);
        Summary { ret_if_arg, ret_always }
    }

    fn result_taint(&self, file: usize, callee: &str, args_tainted: bool) -> bool {
        if self.cfg.secret_fns.iter().any(|f| f == callee) {
            return true;
        }
        // Same-file definitions shadow the workspace-wide bare-name merge.
        if let Some(s) = self.file_summaries.get(&(file, callee.to_string())) {
            return s.ret_always || (s.ret_if_arg && args_tainted);
        }
        match self.summaries.get(callee) {
            Some(s) => s.ret_always || (s.ret_if_arg && args_tainted),
            // Unknown (std / shim) functions conservatively propagate.
            None => args_tainted,
        }
    }

    /// [`Self::result_taint`] for a call qualified by a known non-secret
    /// type (`Ring::new`). Bare-name summaries merge every impl of the
    /// method name, so `ret_always` from some *secret* type's impl must
    /// not apply here; only explicit secret-fn listing, a same-file
    /// definition, and argument propagation do.
    fn result_taint_qualified(&self, file: usize, callee: &str, args_tainted: bool) -> bool {
        if self.cfg.secret_fns.iter().any(|f| f == callee) {
            return true;
        }
        if let Some(s) = self.file_summaries.get(&(file, callee.to_string())) {
            return s.ret_always || (s.ret_if_arg && args_tainted);
        }
        match self.summaries.get(callee) {
            Some(s) => s.ret_if_arg && args_tainted,
            None => args_tainted,
        }
    }
}

/// Expression-evaluation context.
#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    /// Inside an `if`/`while`/`match` head — a tainted result is reported
    /// as `secret-branch` by the caller, so `secret-compare` stays quiet.
    in_condition: bool,
    /// Inside an `assert!` condition — comparisons abort rather than
    /// branch, so both compare and branch rules stay quiet (the *message*
    /// arguments are still sink-checked).
    in_assert: bool,
}

/// Per-function analysis state.
struct FnPass<'a, 'c> {
    an: &'a Analyzer<'c>,
    file: &'a str,
    /// Index of the file the analyzed fn lives in — call resolution
    /// prefers same-file definitions over the bare-name merge.
    file_idx: usize,
    record: bool,
    taint: HashSet<String>,
    ret_tainted: bool,
    viols: Vec<Violation>,
}

impl<'a, 'c> FnPass<'a, 'c> {
    fn new(an: &'a Analyzer<'c>, file: &'a str, file_idx: usize, record: bool) -> Self {
        FnPass {
            an,
            file,
            file_idx,
            record,
            taint: HashSet::new(),
            ret_tainted: false,
            viols: Vec::new(),
        }
    }

    /// Seeds parameter taint. `include_extra` applies the per-function
    /// `secret_fn_params` seeds — used for the recording pass only: those
    /// parameters are secret *in context*, so they must not poison the
    /// function's cross-call summary (a `pow()` over public exponents
    /// would otherwise return "secret" everywhere).
    fn seed(&mut self, f: &FnIr, all_params: bool, include_extra: bool) {
        for (names, ty) in &f.params {
            let secret = all_params || self.an.cfg.is_secret_type(ty);
            let extra = if include_extra { self.an.cfg.extra_params(&f.name) } else { None };
            for n in names {
                if secret || extra.is_some_and(|ps| ps.iter().any(|p| p == n)) {
                    self.taint.insert(n.clone());
                }
            }
        }
        if f.self_secret || (all_params && f.params.iter().any(|(ns, _)| ns.is_empty())) {
            self.taint.insert("self".to_string());
        }
    }

    /// Walks the body until the taint set stops growing, recording
    /// violations only on the final walk. Returns the return-value taint.
    fn stabilize(&mut self, body: &[Tree]) -> bool {
        let record = self.record;
        self.record = false;
        for _ in 0..6 {
            let before = self.taint.len();
            self.ret_tainted = false;
            let trailing = self.walk_stmts(body);
            self.ret_tainted |= trailing;
            if self.taint.len() == before {
                break;
            }
        }
        if record {
            self.record = true;
            self.viols.clear();
            let trailing = self.walk_stmts(body);
            self.ret_tainted |= trailing;
        }
        self.ret_tainted
    }

    fn emit(&mut self, rule: Rule, line: u32, message: String) {
        if self.record {
            self.viols.push(Violation { file: self.file.to_string(), line, rule, message });
        }
    }

    /// Walks a statement list; returns the trailing-expression taint.
    fn walk_stmts(&mut self, items: &[Tree]) -> bool {
        let mut i = 0usize;
        let mut trailing = false;
        while i < items.len() {
            let t = &items[i];
            if t.is_op(";") {
                trailing = false;
                i += 1;
                continue;
            }
            if t.is_op("#") {
                // Statement attribute — skip `#[…]`.
                if items.get(i + 1).is_some_and(|g| g.group('[').is_some()) {
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match t.ident() {
                Some("let") => {
                    let end = find_top_semi(items, i).unwrap_or(items.len());
                    self.process_let(&items[i + 1..end]);
                    trailing = false;
                    i = end + 1;
                }
                Some("return") | Some("break") => {
                    let is_ret = t.ident() == Some("return");
                    let end = find_top_semi(items, i).unwrap_or(items.len());
                    let tv = self.eval_run(&items[i + 1..end], Ctx::default());
                    if is_ret {
                        self.ret_tainted |= tv;
                    }
                    trailing = false;
                    i = end + 1;
                }
                Some("continue") => {
                    let end = find_top_semi(items, i).unwrap_or(items.len());
                    trailing = false;
                    i = end + 1;
                }
                Some("if") | Some("while") | Some("for") | Some("loop") | Some("match")
                | Some("unsafe") => {
                    let (ni, tv) = self.consume_control(items, i);
                    trailing = tv;
                    i = ni;
                }
                Some("fn") | Some("struct") | Some("enum") | Some("impl") | Some("trait")
                | Some("use") | Some("mod") | Some("type") | Some("const") | Some("static") => {
                    // Nested items: the extractor only visits module level,
                    // so skip to the end of the item here.
                    let mut j = i + 1;
                    while j < items.len() && items[j].group('{').is_none() && !items[j].is_op(";") {
                        j += 1;
                    }
                    trailing = false;
                    i = j + 1;
                }
                _ => {
                    if let Some(g) = t.group('{') {
                        trailing = self.walk_stmts(g);
                        i += 1;
                    } else {
                        let end = find_top_semi(items, i).unwrap_or(items.len());
                        let tv = self.process_expr_stmt(&items[i..end]);
                        trailing = if end == items.len() { tv } else { false };
                        i = end + 1;
                    }
                }
            }
        }
        trailing
    }

    fn process_let(&mut self, stmt: &[Tree]) {
        let Some(eq) = stmt.iter().position(|t| t.is_op("=")) else { return };
        let mut pat = &stmt[..eq];
        if let Some(c) = pat.iter().position(|t| t.is_op(":")) {
            pat = &pat[..c];
        }
        let tv = self.eval_run(&stmt[eq + 1..], Ctx::default());
        if tv {
            let mut names = Vec::new();
            pattern_idents(pat, &mut names);
            for n in names {
                self.taint.insert(n);
            }
        }
    }

    fn process_expr_stmt(&mut self, run: &[Tree]) -> bool {
        const ASSIGN: &[&str] =
            &["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
        let assign = run.iter().position(|t| ASSIGN.iter().any(|op| t.is_op(op)));
        if let Some(a) = assign {
            let rt = self.eval_run(&run[a + 1..], Ctx::default());
            let lt = self.eval_run(&run[..a], Ctx::default());
            if rt {
                // Taint the assignment target's base identifier.
                for t in &run[..a] {
                    if let Some(id) = t.ident() {
                        if !KEYWORDS.contains(&id) {
                            self.taint.insert(id.to_string());
                            break;
                        }
                    }
                }
            }
            rt || lt
        } else {
            self.eval_run(run, Ctx::default())
        }
    }

    /// Handles a control-flow construct starting at `items[i]`. Returns
    /// `(index after the construct, value taint)`.
    fn consume_control(&mut self, items: &[Tree], i: usize) -> (usize, bool) {
        let line = items[i].line();
        match items[i].ident() {
            Some("if") | Some("while") => {
                let kind = items[i].ident().unwrap_or("if");
                let Some(j) = find_top_brace(items, i + 1) else { return (items.len(), false) };
                let cond = &items[i + 1..j];
                let cond_taint = self.eval_condition(cond);
                if cond_taint {
                    self.emit(
                        Rule::SecretBranch,
                        line,
                        format!("`{kind}` condition depends on secret-derived data"),
                    );
                }
                let mut value = self.block(&items[j]);
                let mut k = j + 1;
                while items.get(k).and_then(Tree::ident) == Some("else") {
                    match items.get(k + 1) {
                        Some(n) if n.ident() == Some("if") => {
                            let (nk, v) = self.consume_control(items, k + 1);
                            value |= v;
                            k = nk;
                        }
                        Some(n) if n.group('{').is_some() => {
                            value |= self.block(n);
                            k += 2;
                            break;
                        }
                        _ => break,
                    }
                }
                (k, value | cond_taint)
            }
            Some("for") => {
                let Some(j) = find_top_brace(items, i + 1) else { return (items.len(), false) };
                let head = &items[i + 1..j];
                let in_pos = head.iter().position(|t| t.ident() == Some("in"));
                if let Some(p) = in_pos {
                    let tv = self.eval_run(&head[p + 1..], Ctx::default());
                    if tv {
                        let mut names = Vec::new();
                        pattern_idents(&head[..p], &mut names);
                        for n in names {
                            self.taint.insert(n);
                        }
                    }
                }
                self.block(&items[j]);
                (j + 1, false)
            }
            Some("loop") | Some("unsafe") => {
                let Some(j) = find_top_brace(items, i + 1) else { return (items.len(), false) };
                let v = self.block(&items[j]);
                (j + 1, v)
            }
            Some("match") => {
                let Some(j) = find_top_brace(items, i + 1) else { return (items.len(), false) };
                let t =
                    self.eval_run(&items[i + 1..j], Ctx { in_condition: true, in_assert: false });
                if t {
                    self.emit(
                        Rule::SecretBranch,
                        line,
                        "`match` scrutinee depends on secret-derived data".to_string(),
                    );
                }
                let mut value = t;
                if let Some(arms) = items[j].group('{') {
                    value |= self.walk_match_arms(arms, t);
                }
                (j + 1, value)
            }
            _ => (i + 1, false),
        }
    }

    /// Evaluates an `if`/`while` head, handling `let`-pattern forms.
    fn eval_condition(&mut self, cond: &[Tree]) -> bool {
        let ctx = Ctx { in_condition: true, in_assert: false };
        if cond.first().and_then(Tree::ident) == Some("let") {
            if let Some(eq) = cond.iter().position(|t| t.is_op("=")) {
                let tv = self.eval_run(&cond[eq + 1..], ctx);
                if tv {
                    let mut names = Vec::new();
                    pattern_idents(&cond[1..eq], &mut names);
                    for n in names {
                        self.taint.insert(n);
                    }
                }
                return tv;
            }
        }
        self.eval_run(cond, ctx)
    }

    fn block(&mut self, g: &Tree) -> bool {
        match g.group('{') {
            Some(items) => self.walk_stmts(items),
            None => false,
        }
    }

    fn walk_match_arms(&mut self, arms: &[Tree], scrut_tainted: bool) -> bool {
        let mut i = 0usize;
        let mut value = false;
        while i < arms.len() {
            let Some(arrow) = find_top_op(arms, i, "=>") else { break };
            if scrut_tainted {
                let mut names = Vec::new();
                pattern_idents(&arms[i..arrow], &mut names);
                for n in names {
                    self.taint.insert(n);
                }
            }
            match arms.get(arrow + 1) {
                Some(g) if g.group('{').is_some() => {
                    value |= self.block(g);
                    i = arrow + 2;
                    if arms.get(i).is_some_and(|t| t.is_op(",")) {
                        i += 1;
                    }
                }
                Some(_) => {
                    let end = find_top_op(arms, arrow + 1, ",").unwrap_or(arms.len());
                    value |= self.eval_run(&arms[arrow + 1..end], Ctx::default());
                    i = end + 1;
                }
                None => break,
            }
        }
        value
    }

    /// Evaluates an expression run; returns its taint and fires rules.
    fn eval_run(&mut self, run: &[Tree], ctx: Ctx) -> bool {
        let mut tainted = false;
        let mut cmp_line: Option<u32> = None;
        let mut sc_line: Option<u32> = None;
        let mut i = 0usize;
        while i < run.len() {
            let t = &run[i];
            if let Some(id) = t.ident() {
                match id {
                    "if" | "while" | "for" | "loop" | "match" | "unsafe" => {
                        let (ni, v) = self.consume_control(run, i);
                        tainted |= v;
                        i = ni;
                    }
                    "else" => {
                        if let Some(g) = run.get(i + 1) {
                            if g.group('{').is_some() {
                                tainted |= self.block(g);
                                i += 2;
                                continue;
                            }
                        }
                        i += 1;
                    }
                    "as" => {
                        // Skip the cast target type.
                        i += 1;
                        while i < run.len() && (run[i].ident().is_some() || run[i].is_op("::")) {
                            i += 1;
                        }
                    }
                    "return" => {
                        // `return expr` inside an expression position.
                        let tv = self.eval_run(&run[i + 1..], Ctx::default());
                        self.ret_tainted |= tv;
                        i = run.len();
                    }
                    "move" | "mut" | "ref" | "dyn" | "impl" | "let" | "in" | "true" | "false" => {
                        i += 1;
                    }
                    _ => {
                        let (ni, v) = self.eval_atom(run, i, ctx);
                        tainted |= v;
                        i = ni;
                    }
                }
            } else if let Tree::Leaf(tok) = t {
                match &tok.kind {
                    TokKind::Op(op) => match *op {
                        "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                            cmp_line.get_or_insert(tok.line);
                            i += 1;
                        }
                        "&&" | "||" => {
                            // `||` at operand position is an empty-param
                            // closure; as an infix operator it is a
                            // short-circuit branch.
                            if *op == "||" && closure_pos(run, i) {
                                i = skip_closure_ret(run, i + 1); // empty closure params
                            } else {
                                sc_line.get_or_insert(tok.line);
                                i += 1;
                            }
                        }
                        "|" => {
                            // Closure params if at operand position, else
                            // bit-or.
                            if closure_pos(run, i) {
                                let close = find_top_op(run, i + 1, "|").unwrap_or(run.len());
                                i = skip_closure_ret(run, close.saturating_add(1).min(run.len()));
                            } else {
                                i += 1;
                            }
                        }
                        _ => i += 1,
                    },
                    _ => i += 1,
                }
            } else {
                // Group at expression position — give it atom treatment so
                // chained calls/indexing after it are handled.
                let (ni, v) = self.eval_atom(run, i, ctx);
                tainted |= v;
                i = ni;
            }
        }
        if tainted {
            if let Some(l) = cmp_line {
                if !ctx.in_condition && !ctx.in_assert {
                    self.emit(
                        Rule::SecretCompare,
                        l,
                        "raw comparison on secret-derived values; use aq2pnn_ring::ct helpers"
                            .to_string(),
                    );
                }
            }
            if let Some(l) = sc_line {
                if !ctx.in_condition && !ctx.in_assert {
                    self.emit(
                        Rule::SecretBranch,
                        l,
                        "short-circuit boolean over secret-derived values".to_string(),
                    );
                }
            }
        }
        tainted
    }

    /// Evaluates one atom (path / literal / group) and its postfix chain.
    fn eval_atom(&mut self, run: &[Tree], i: usize, ctx: Ctx) -> (usize, bool) {
        let mut cur = false;
        let mut base_ident: Option<String> = None;
        let mut j = i + 1;
        match &run[i] {
            Tree::Leaf(tok) => {
                // Non-identifier leaves are literals: never tainted.
                if let TokKind::Ident(name) = &tok.kind {
                    let mut segs: Vec<String> = vec![name.clone()];
                    while run.get(j).is_some_and(|t| t.is_op("::")) {
                        match run.get(j + 1) {
                            Some(t) if t.is_op("<") => {
                                j = skip_angle(run, j + 1);
                            }
                            Some(t) if t.ident().is_some() => {
                                segs.push(t.ident().unwrap_or_default().to_string());
                                j += 2;
                            }
                            _ => break,
                        }
                    }
                    let last = segs.last().cloned().unwrap_or_default();
                    let next_is_macro = run.get(j).is_some_and(|t| t.is_op("!"))
                        && run.get(j + 1).is_some_and(|t| matches!(t, Tree::Group { .. }));
                    if next_is_macro {
                        if let Some(Tree::Group { items, open_line, .. }) = run.get(j + 1) {
                            cur = self.handle_macro(&last, items, *open_line, ctx);
                        }
                        j += 2;
                    } else if let Some(Tree::Group { delim: '(', items, open_line }) = run.get(j) {
                        let argt = self.eval_call_args(items, false, ctx);
                        if argt && self.an.cfg.alloc_fns.contains(&last) {
                            self.emit(
                                Rule::SecretAlloc,
                                *open_line,
                                format!("allocation size passed to `{last}` is secret-derived"),
                            );
                        }
                        // Cross-call summaries merge impls by bare method
                        // name, so a type-qualified call resolves by the
                        // named type instead: `AShare::new(..)` is secret
                        // because `AShare` is, while `Ring::new(..)` stays
                        // public even though secret types also define `new`.
                        let type_qualifier = (segs.len() >= 2)
                            .then(|| segs[segs.len() - 2].as_str())
                            .filter(|q| q.chars().next().is_some_and(char::is_uppercase));
                        cur = match type_qualifier {
                            Some(q) if self.an.cfg.is_secret_type(q) => true,
                            Some("Self") => {
                                self.taint.contains("self")
                                    || (self.an.result_taint(self.file_idx, &last, argt))
                            }
                            Some(_) => self.an.result_taint_qualified(self.file_idx, &last, argt),
                            None => self.an.result_taint(self.file_idx, &last, argt),
                        };
                        j += 1;
                    } else if segs.len() == 1 {
                        cur = self.taint.contains(name);
                        base_ident = Some(name.clone());
                    }
                }
            }
            Tree::Group { delim, items, open_line } => {
                match delim {
                    '(' => cur = self.eval_run(items, Ctx { in_condition: false, ..ctx }),
                    '[' => {
                        // Array literal `[v; n]` — n is an allocation size.
                        if let Some(semi) = items.iter().position(|t| t.is_op(";")) {
                            cur = self.eval_run(&items[..semi], Ctx::default());
                            let nt = self.eval_run(&items[semi + 1..], Ctx::default());
                            if nt {
                                self.emit(
                                    Rule::SecretAlloc,
                                    *open_line,
                                    "array length is secret-derived".to_string(),
                                );
                            }
                        } else {
                            cur = self.eval_run(items, Ctx::default());
                        }
                    }
                    _ => cur = self.walk_stmts(items),
                }
            }
        }
        // Postfix chain: `.method(…)`, `.field`, `[index]`, `(args)`, `?`.
        loop {
            match run.get(j) {
                Some(t) if t.is_op(".") => {
                    match run.get(j + 1) {
                        Some(Tree::Leaf(tok)) => match &tok.kind {
                            TokKind::Num(_) => j += 2,
                            TokKind::Ident(m) => {
                                let m = m.clone();
                                // Skip a turbofish: `.collect::<Vec<_>>()`.
                                let mut call_at = j + 2;
                                if run.get(call_at).is_some_and(|t| t.is_op("::"))
                                    && run.get(call_at + 1).is_some_and(|t| t.is_op("<"))
                                {
                                    call_at = skip_angle(run, call_at + 1);
                                }
                                let group = run.get(call_at).and_then(|t| match t {
                                    Tree::Group { delim: '(', items, open_line } => {
                                        Some((items.as_slice(), *open_line))
                                    }
                                    _ => None,
                                });
                                let cfgr = self.an.cfg;
                                if cfgr.sanitizers.contains(&m) || cfgr.publicizers.contains(&m) {
                                    if let Some((items, _)) = group {
                                        self.eval_call_args(items, false, ctx);
                                    }
                                    cur = false;
                                } else if cfgr.secret_fields.contains(&m)
                                    || cfgr.secret_fns.contains(&m)
                                {
                                    if let Some((items, _)) = group {
                                        self.eval_call_args(items, false, ctx);
                                    }
                                    cur = true;
                                } else if let Some((items, open_line)) = group {
                                    let argt = self.eval_call_args(items, cur, ctx);
                                    if argt && cfgr.alloc_fns.contains(&m) {
                                        self.emit(
                                            Rule::SecretAlloc,
                                            open_line,
                                            format!(
                                                "allocation size passed to `.{m}()` is \
                                                 secret-derived"
                                            ),
                                        );
                                    }
                                    if (cur || argt)
                                        && !ctx.in_condition
                                        && !ctx.in_assert
                                        && matches!(
                                            m.as_str(),
                                            "cmp"
                                                | "partial_cmp"
                                                | "eq"
                                                | "ne"
                                                | "lt"
                                                | "gt"
                                                | "le"
                                                | "ge"
                                                | "min"
                                                | "max"
                                        )
                                    {
                                        self.emit(
                                            Rule::SecretCompare,
                                            open_line,
                                            format!(
                                                "`.{m}()` on secret-derived values; use \
                                                 aq2pnn_ring::ct helpers"
                                            ),
                                        );
                                    }
                                    if argt && cfgr.mutators.contains(&m) {
                                        if let Some(b) = &base_ident {
                                            self.taint.insert(b.clone());
                                        }
                                    }
                                    // Closure-terminator adapters: the
                                    // result is the closure's output, so a
                                    // sanitized closure body (`.any(|l|
                                    // l.len() > 1)`) yields a public bool
                                    // even on a secret collection.
                                    if matches!(
                                        m.as_str(),
                                        "any" | "all" | "position" | "rposition"
                                    ) {
                                        cur = argt;
                                    } else {
                                        // Qualified resolution: the receiver
                                        // type is unknown, so a merged
                                        // `ret_always` from some *other*
                                        // type's identically-named method
                                        // (`AShare::neg` vs `Ring::neg`) must
                                        // not apply. Same-file definitions
                                        // and declared secret fns still do.
                                        cur = self.an.result_taint_qualified(
                                            self.file_idx,
                                            &m,
                                            cur || argt,
                                        );
                                    }
                                } else {
                                    // Plain field access keeps taint.
                                }
                                j = if group.is_some() { call_at + 1 } else { j + 2 };
                            }
                            _ => break,
                        },
                        _ => break,
                    }
                }
                Some(Tree::Group { delim: '[', items, open_line }) => {
                    let it = self.eval_run(items, Ctx { in_condition: false, ..ctx });
                    if it {
                        self.emit(
                            Rule::SecretIndex,
                            *open_line,
                            "index or slice bound derived from secret data".to_string(),
                        );
                    }
                    cur |= it;
                    j += 1;
                }
                Some(Tree::Group { delim: '(', items, .. }) => {
                    let argt = self.eval_call_args(items, cur, ctx);
                    cur |= argt;
                    j += 1;
                }
                Some(t) if t.is_op("?") => j += 1,
                _ => break,
            }
        }
        (j.max(i + 1), cur)
    }

    /// Evaluates call arguments; returns the OR of their taints. Closure
    /// parameters are pre-tainted when the receiver is tainted (so
    /// `shares.iter().map(|v| …)` taints `v`).
    fn eval_call_args(&mut self, items: &[Tree], base_tainted: bool, ctx: Ctx) -> bool {
        let mut tainted = false;
        let arg_ctx = Ctx { in_condition: false, ..ctx };
        // Drop `-> Type` closure return annotations before splitting on
        // commas: the type's generics may contain top-level commas and
        // angle brackets that are neither argument separators nor
        // comparisons (`move || -> Result<A, B> { … }`).
        let mut filtered: Vec<Tree> = Vec::with_capacity(items.len());
        let mut it = items.iter().peekable();
        while let Some(t) = it.next() {
            if t.is_op("->") {
                while it.peek().is_some_and(|n| !matches!(n, Tree::Group { delim: '{', .. })) {
                    it.next();
                }
            } else {
                filtered.push(t.clone());
            }
        }
        let items = filtered.as_slice();
        for arg in split_top(items, ",") {
            if arg.is_empty() {
                continue;
            }
            let mut k = 0usize;
            if arg[k].ident() == Some("move") {
                k += 1;
            }
            if arg.get(k).is_some_and(|t| t.is_op("||")) {
                // Zero-parameter closure.
                tainted |= self.eval_run(&arg[k + 1..], arg_ctx);
            } else if arg.get(k).is_some_and(|t| t.is_op("|")) {
                let close = find_top_op(arg, k + 1, "|").unwrap_or(arg.len());
                if base_tainted {
                    let mut names = Vec::new();
                    pattern_idents(&arg[k + 1..close.min(arg.len())], &mut names);
                    for n in names {
                        self.taint.insert(n);
                    }
                }
                let body = if close < arg.len() { &arg[close + 1..] } else { &arg[0..0] };
                tainted |= self.eval_run(body, arg_ctx);
            } else {
                tainted |= self.eval_run(arg, arg_ctx);
            }
        }
        tainted
    }

    /// Macro handling: sinks, asserts, `vec!` sizing, `matches!`.
    fn handle_macro(&mut self, name: &str, items: &[Tree], line: u32, ctx: Ctx) -> bool {
        const SINKS: &[&str] = &[
            "format",
            "format_args",
            "println",
            "print",
            "eprintln",
            "eprint",
            "panic",
            "write",
            "writeln",
            "dbg",
            "todo",
            "unreachable",
            "unimplemented",
            "trace",
            "debug",
            "info",
            "warn",
            "error",
        ];
        match name {
            "vec" => {
                if let Some(semi) = items.iter().position(|t| t.is_op(";")) {
                    let vt = self.eval_run(&items[..semi], Ctx::default());
                    let nt = self.eval_run(&items[semi + 1..], Ctx::default());
                    if nt {
                        self.emit(
                            Rule::SecretAlloc,
                            line,
                            "`vec![_; n]` length is secret-derived".to_string(),
                        );
                    }
                    vt
                } else {
                    self.eval_call_args(items, false, ctx)
                }
            }
            "matches" => {
                let args = split_top(items, ",");
                let t = args.first().is_some_and(|a| {
                    self.eval_run(a, Ctx { in_condition: true, in_assert: ctx.in_assert })
                });
                if t && !ctx.in_condition && !ctx.in_assert {
                    self.emit(
                        Rule::SecretCompare,
                        line,
                        "`matches!` tests a secret-derived value".to_string(),
                    );
                }
                t
            }
            "assert" | "debug_assert" | "assert_eq" | "assert_ne" | "debug_assert_eq"
            | "debug_assert_ne" => {
                let exempt = if name.ends_with("_eq") || name.ends_with("_ne") { 2 } else { 1 };
                let actx = Ctx { in_condition: true, in_assert: true };
                for (idx, arg) in split_top(items, ",").into_iter().enumerate() {
                    if idx < exempt {
                        self.eval_run(arg, actx);
                    } else {
                        self.sink_check_arg(arg, name, line);
                    }
                }
                false
            }
            _ if SINKS.contains(&name) => {
                let mut tainted = false;
                for arg in split_top(items, ",") {
                    tainted |= self.sink_check_arg(arg, name, line);
                }
                tainted
            }
            _ => self.eval_call_args(items, false, ctx),
        }
    }

    /// Checks one sink-macro argument; also resolves `{ident}` inline
    /// captures inside string literals.
    fn sink_check_arg(&mut self, arg: &[Tree], macro_name: &str, line: u32) -> bool {
        if arg.is_empty() {
            return false;
        }
        if let [Tree::Leaf(tok)] = arg {
            if let TokKind::Str(s) = &tok.kind {
                for cap in format_captures(s) {
                    if self.taint.contains(&cap) {
                        self.emit(
                            Rule::SecretSink,
                            tok.line,
                            format!(
                                "format string in `{macro_name}!` captures secret-derived \
                                 `{{{cap}}}`"
                            ),
                        );
                    }
                }
                return false;
            }
        }
        let t = self.eval_run(arg, Ctx::default());
        if t {
            self.emit(
                Rule::SecretSink,
                line,
                format!("secret-derived value passed to `{macro_name}!`"),
            );
        }
        t
    }
}

/// `{ident}` / `{ident:spec}` captures in a format string.
fn format_captures(s: &str) -> Vec<String> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'{' {
            if i + 1 < b.len() && b[i + 1] == b'{' {
                i += 2;
                continue;
            }
            let start = i + 1;
            let mut j = start;
            while j < b.len() && b[j] != b'}' && b[j] != b':' {
                j += 1;
            }
            let name = &s[start..j];
            if !name.is_empty()
                && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                out.push(name.to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// First top-level `;` at or after `i`.
fn find_top_semi(items: &[Tree], i: usize) -> Option<usize> {
    items[i..].iter().position(|t| t.is_op(";")).map(|p| i + p)
}

/// First top-level occurrence of `op` at or after `i`.
fn find_top_op(items: &[Tree], i: usize, op: &str) -> Option<usize> {
    items[i..].iter().position(|t| t.is_op(op)).map(|p| i + p)
}

/// Is the `|`/`||` at `run[i]` in closure-introducer position? True at the
/// start of a run, after another operator, or after the `move` keyword.
fn closure_pos(run: &[Tree], i: usize) -> bool {
    i == 0
        || matches!(&run[i - 1], Tree::Leaf(l) if matches!(l.kind, TokKind::Op(_)))
        || run[i - 1].ident() == Some("move")
}

/// Skips a `-> Type` closure return annotation: the type's `<`/`>` are not
/// comparisons. Rust requires a block body after an annotated closure, so
/// advance to the `{…}` group.
fn skip_closure_ret(run: &[Tree], mut i: usize) -> usize {
    if run.get(i).is_some_and(|t| t.is_op("->")) {
        while i < run.len() && !matches!(&run[i], Tree::Group { delim: '{', .. }) {
            i += 1;
        }
    }
    i
}

/// First top-level `{…}` group at or after `i`.
fn find_top_brace(items: &[Tree], i: usize) -> Option<usize> {
    items[i..].iter().position(|t| t.group('{').is_some()).map(|p| i + p)
}
