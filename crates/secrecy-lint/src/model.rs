//! Shared model layer for both analysis passes.
//!
//! The secret-independence pass ([`taint`](crate::taint)) and the
//! concurrency-soundness pass ([`conc`](crate::conc)) drive the same
//! lexer → token-tree front end and report through the same types:
//! [`Rule`], [`Violation`], [`AllowSite`], [`Report`]. Each pass owns one
//! directive *namespace* (`// secrecy: …` vs `// sync: …`); the shared
//! [`parse_directives`] / [`apply_allows`] helpers implement the common
//! allow grammar — `allow(rule, "reason")` with a mandatory reason, a
//! five-line suppression window, and hard errors for malformed or unused
//! annotations — so suppressions cannot rot in either pass.

use crate::lexer::{Directive, Ns};

/// How many lines after an allow annotation it covers (inclusive).
pub const ALLOW_WINDOW: u32 = 5;

/// Lint rules across both passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `if`/`while`/`match`/short-circuit condition derived from a secret.
    SecretBranch,
    /// Array/slice index or range bound derived from a secret.
    SecretIndex,
    /// Allocation size (`with_capacity`, `reserve`, `vec![_; n]`) derived
    /// from a secret.
    SecretAlloc,
    /// Secret reaches a `format!`-family / logging / `Debug` sink.
    SecretSink,
    /// Raw `==`/`<`/`.cmp()` on secrets instead of `aq2pnn_ring::ct`.
    SecretCompare,
    /// Two lock classes acquired in inconsistent order somewhere in the
    /// workspace call graph (potential deadlock cycle).
    LockOrderCycle,
    /// A blocking operation (channel send/recv, foreign `Condvar::wait`,
    /// thread park/sleep/join, TCP I/O) performed while a lock guard is
    /// held.
    BlockingWhileLocked,
    /// `Condvar::wait` outside a predicate loop, or a notify with no
    /// associated waiter anywhere in the workspace.
    CondvarMisuse,
    /// A lock guard escaping its acquiring function (returned or stashed).
    GuardEscape,
    /// An allow annotation (either namespace) that suppressed nothing.
    UnusedAllow,
    /// A control comment the lint could not parse.
    MalformedAllow,
}

impl Rule {
    /// The rule's kebab-case name as used in allow annotations.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::SecretBranch => "secret-branch",
            Rule::SecretIndex => "secret-index",
            Rule::SecretAlloc => "secret-alloc",
            Rule::SecretSink => "secret-sink",
            Rule::SecretCompare => "secret-compare",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::BlockingWhileLocked => "blocking-while-locked",
            Rule::CondvarMisuse => "condvar-misuse",
            Rule::GuardEscape => "guard-escape",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parses a rule name *within a namespace*: a `// sync:` comment can
    /// only allow sync rules and vice versa, so a typo'd namespace is a
    /// malformed-allow rather than a silently ignored annotation.
    #[must_use]
    pub fn parse_in(ns: Ns, s: &str) -> Option<Rule> {
        let rule = match s {
            "secret-branch" => Rule::SecretBranch,
            "secret-index" => Rule::SecretIndex,
            "secret-alloc" => Rule::SecretAlloc,
            "secret-sink" => Rule::SecretSink,
            "secret-compare" => Rule::SecretCompare,
            "lock-order-cycle" => Rule::LockOrderCycle,
            "blocking-while-locked" => Rule::BlockingWhileLocked,
            "condvar-misuse" => Rule::CondvarMisuse,
            "guard-escape" => Rule::GuardEscape,
            _ => return None,
        };
        let sync = matches!(
            rule,
            Rule::LockOrderCycle
                | Rule::BlockingWhileLocked
                | Rule::CondvarMisuse
                | Rule::GuardEscape
        );
        match ns {
            Ns::Secrecy if !sync => Some(rule),
            Ns::Sync if sync => Some(rule),
            _ => None,
        }
    }

    /// Parses a secrecy-namespace rule name (back-compat shorthand).
    #[must_use]
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::parse_in(Ns::Secrecy, s)
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in (as registered with the linter).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

/// A parsed `allow(rule, "reason")` site (either namespace).
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// File the annotation is in.
    pub file: String,
    /// 1-based line of the annotation.
    pub line: u32,
    /// Rule it suppresses.
    pub rule: Rule,
    /// The mandatory justification.
    pub reason: String,
    /// Whether it suppressed at least one violation.
    pub used: bool,
}

/// Result of a lint run (either pass).
#[derive(Debug, Clone)]
pub struct Report {
    /// Surviving violations, sorted by file and line.
    pub violations: Vec<Violation>,
    /// Allow annotations found (with use marks).
    pub allows: Vec<AllowSite>,
    /// Number of files analyzed.
    pub files: usize,
    /// Number of functions analyzed.
    pub functions: usize,
}

impl Report {
    /// Whether the run is clean (no violations survive).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes the report as JSON (hand-rolled — no serde available for
    /// arbitrary nesting in the vendored shims).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files\": {},\n", self.files));
        s.push_str(&format!("  \"functions\": {},\n", self.functions));
        s.push_str(&format!(
            "  \"allows_total\": {},\n  \"allows_used\": {},\n",
            self.allows.len(),
            self.allows.iter().filter(|a| a.used).count()
        ));
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
                json_escape(&v.file),
                v.line,
                v.rule.name(),
                json_escape(&v.message),
                if i + 1 == self.violations.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"used\": {}, \
                 \"reason\": \"{}\"}}{}\n",
                json_escape(&a.file),
                a.line,
                a.rule.name(),
                a.used,
                json_escape(&a.reason),
                if i + 1 == self.allows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string escaping for the hand-rolled report writer.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a pass needs from one file's control comments.
#[derive(Debug, Default)]
pub struct ParsedDirectives {
    /// Lines carrying a `declassify` directive (secrecy namespace only).
    pub declassify_lines: Vec<u32>,
    /// Well-formed allow annotations.
    pub allows: Vec<AllowSite>,
    /// Malformed-directive violations.
    pub malformed: Vec<Violation>,
}

/// Parses the directives of one namespace out of a file's comment set.
///
/// Directives in the *other* namespace are ignored (the other pass owns
/// them). `declassify` is only meaningful to the secrecy pass; in the
/// sync namespace it is malformed.
#[must_use]
pub fn parse_directives(file: &str, ns: Ns, directives: &[Directive]) -> ParsedDirectives {
    let mut out = ParsedDirectives::default();
    for d in directives {
        if d.ns != ns {
            continue;
        }
        let body = d.body.trim();
        let malformed = |msg: String| Violation {
            file: file.to_string(),
            line: d.line,
            rule: Rule::MalformedAllow,
            message: msg,
        };
        if body == "declassify" || body.starts_with("declassify ") {
            if ns == Ns::Secrecy {
                out.declassify_lines.push(d.line);
            } else {
                out.malformed.push(malformed(
                    "`declassify` is a secrecy-namespace directive; `// sync:` only accepts \
                     `allow(rule, \"reason\")`"
                        .to_string(),
                ));
            }
            continue;
        }
        let pfx = ns.prefix();
        if let Some(rest) = body.strip_prefix("allow") {
            let rest = rest.trim_start();
            let Some(inner) = rest.strip_prefix('(').and_then(|r| r.rfind(')').map(|p| &r[..p]))
            else {
                out.malformed
                    .push(malformed(format!("{pfx} allow: expected `allow(rule, \"reason\")`")));
                continue;
            };
            let Some((rule_s, reason_s)) = inner.split_once(',') else {
                out.malformed.push(malformed(format!(
                    "{pfx} allow: missing mandatory reason — `allow(rule, \"reason\")`"
                )));
                continue;
            };
            let Some(rule) = Rule::parse_in(ns, rule_s.trim()) else {
                out.malformed.push(malformed(format!(
                    "{pfx} allow: unknown rule `{}` for the `{pfx}` namespace",
                    rule_s.trim()
                )));
                continue;
            };
            let reason = reason_s.trim().trim_matches('"').trim();
            if reason.is_empty() {
                out.malformed
                    .push(malformed(format!("{pfx} allow: reason string must be non-empty")));
                continue;
            }
            out.allows.push(AllowSite {
                file: file.to_string(),
                line: d.line,
                rule,
                reason: reason.to_string(),
                used: false,
            });
        } else {
            out.malformed.push(malformed(format!(
                "unrecognized `// {pfx}:` directive `{body}` (expected `allow(rule, \
                 \"reason\")`{})",
                if ns == Ns::Secrecy { " or `declassify`" } else { "" }
            )));
        }
    }
    out
}

/// Applies allow annotations to a violation set, in place.
///
/// A violation within `[allow.line, allow.line + ALLOW_WINDOW]` of a
/// same-file, same-rule annotation is suppressed and the annotation
/// marked used; every unused annotation becomes an `unused-allow`
/// violation. Finally sorts by `(file, line)`.
pub fn apply_allows(violations: &mut Vec<Violation>, allows: &mut [AllowSite]) {
    violations.retain(|v| {
        for a in allows.iter_mut() {
            if a.rule == v.rule
                && a.file == v.file
                && v.line >= a.line
                && v.line <= a.line + ALLOW_WINDOW
            {
                a.used = true;
                return false;
            }
        }
        true
    });
    for a in allows.iter() {
        if !a.used {
            violations.push(Violation {
                file: a.file.clone(),
                line: a.line,
                rule: Rule::UnusedAllow,
                message: format!(
                    "allow({}) suppresses nothing within {ALLOW_WINDOW} lines — remove it",
                    a.rule.name()
                ),
            });
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    #[test]
    fn namespaces_gate_rule_parsing() {
        assert!(Rule::parse_in(Ns::Secrecy, "secret-index").is_some());
        assert!(Rule::parse_in(Ns::Secrecy, "guard-escape").is_none());
        assert!(Rule::parse_in(Ns::Sync, "guard-escape").is_some());
        assert!(Rule::parse_in(Ns::Sync, "secret-index").is_none());
        assert!(Rule::parse_in(Ns::Sync, "unused-allow").is_none());
    }

    #[test]
    fn sync_declassify_is_malformed() {
        let (_, ds) = lexer::lex("// sync: declassify\nfn f() {}\n");
        let parsed = parse_directives("t.rs", Ns::Sync, &ds);
        assert_eq!(parsed.malformed.len(), 1);
        assert!(parsed.declassify_lines.is_empty());
    }

    #[test]
    fn passes_ignore_foreign_namespace() {
        let (_, ds) = lexer::lex(
            "// secrecy: allow(secret-index, \"a\")\n// sync: allow(guard-escape, \"b\")\n",
        );
        let sec = parse_directives("t.rs", Ns::Secrecy, &ds);
        let syn = parse_directives("t.rs", Ns::Sync, &ds);
        assert_eq!(sec.allows.len(), 1);
        assert_eq!(sec.allows[0].rule, Rule::SecretIndex);
        assert_eq!(syn.allows.len(), 1);
        assert_eq!(syn.allows[0].rule, Rule::GuardEscape);
        assert!(sec.malformed.is_empty() && syn.malformed.is_empty());
    }

    #[test]
    fn apply_allows_window_and_unused() {
        let mut violations = vec![Violation {
            file: "t.rs".into(),
            line: 12,
            rule: Rule::GuardEscape,
            message: "x".into(),
        }];
        let mut allows = vec![
            AllowSite {
                file: "t.rs".into(),
                line: 10,
                rule: Rule::GuardEscape,
                reason: "r".into(),
                used: false,
            },
            AllowSite {
                file: "t.rs".into(),
                line: 40,
                rule: Rule::CondvarMisuse,
                reason: "r".into(),
                used: false,
            },
        ];
        apply_allows(&mut violations, &mut allows);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, Rule::UnusedAllow);
        assert!(allows[0].used && !allows[1].used);
    }
}
