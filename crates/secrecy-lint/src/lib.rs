//! # secrecy-lint
//!
//! Workspace-local static *secret-independence* analysis for the AQ2PNN
//! 2PC crates. The pass parses every source file with its own lexer and
//! token-tree layer (the build environment vendors no `syn`), taints
//! declared secret carriers — [`AShare`]-like share types, OT choice
//! bits and label exponents, Beaver triple components, A2BM bit-group
//! codes — and flags program points where control flow, memory access,
//! allocation sizing or logging depends on them:
//!
//! - `secret-branch` — `if`/`while`/`match`/short-circuit conditions
//!   derived from secrets;
//! - `secret-index` — secret-dependent indexing or slice bounds;
//! - `secret-alloc` — secret-dependent allocation sizes;
//! - `secret-sink` — secrets reaching `format!`-family or logging sinks
//!   (including `#[derive(Debug)]` on secret-carrying types);
//! - `secret-compare` — raw `==`/`<`/`.cmp()` on secrets instead of the
//!   constant-time helpers in `aq2pnn_ring::ct`.
//!
//! Accepted residual disclosures are annotated in-tree with
//!
//! ```text
//! // secrecy: allow(secret-index, "table is public setup data")
//! ```
//!
//! which suppresses that one rule for the next five lines. The reason
//! string is mandatory, and an annotation that suppresses nothing is
//! itself a violation (`unused-allow`), so suppressions cannot rot. A
//! function documented as deliberately revealing masked data can opt out
//! wholesale with `// secrecy: declassify` next to its signature.
//!
//! Run it via `cargo xtask lint` (see the `xtask` crate); CI runs it in
//! `--deny` mode and uploads the `--json` report.
//!
//! [`AShare`]: https://docs.rs/aq2pnn-sharing

pub mod conc;
pub mod lexer;
pub mod model;
pub mod selftest;
mod taint;
pub mod tree;

pub use conc::ConcLinter;
pub use model::{AllowSite, Report, Rule, Violation, ALLOW_WINDOW};
pub use taint::Config;

use lexer::Ns;

/// The linter: add files, then [`Linter::run`].
pub struct Linter {
    cfg: Config,
    fns: Vec<taint::FnIr>,
    file_names: Vec<String>,
    pre_violations: Vec<Violation>,
    allows: Vec<AllowSite>,
}

impl Linter {
    /// Creates a linter with the given taint configuration.
    #[must_use]
    pub fn new(cfg: Config) -> Self {
        Linter {
            cfg,
            fns: Vec::new(),
            file_names: Vec::new(),
            pre_violations: Vec::new(),
            allows: Vec::new(),
        }
    }

    /// Parses and registers one source file.
    pub fn add_file(&mut self, name: &str, src: &str) {
        let (toks, comments) = lexer::lex(src);
        let trees = tree::build(toks);
        let parsed = model::parse_directives(name, Ns::Secrecy, &comments);
        self.pre_violations.extend(parsed.malformed);
        self.allows.extend(parsed.allows);
        let file_idx = self.file_names.len();
        self.file_names.push(name.to_string());
        taint::extract(
            &trees,
            file_idx,
            name,
            &self.cfg,
            &parsed.declassify_lines,
            &mut self.fns,
            &mut self.pre_violations,
        );
    }

    /// Debugging hook: runs the analysis and returns the names of
    /// functions whose cross-call summary claims "returns secret
    /// regardless of arguments". Useful for diagnosing taint cascades.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_ret_always(self) -> Vec<String> {
        let mut an = taint::Analyzer::new(&self.cfg);
        let _ = an.run(&self.fns, &self.file_names);
        an.ret_always_names()
    }

    /// Runs the analysis and applies allow annotations.
    #[must_use]
    pub fn run(mut self) -> Report {
        let mut an = taint::Analyzer::new(&self.cfg);
        let mut violations = an.run(&self.fns, &self.file_names);
        violations.extend(self.pre_violations.clone());
        model::apply_allows(&mut violations, &mut self.allows);
        Report {
            violations,
            allows: self.allows,
            files: self.file_names.len(),
            functions: self.fns.len(),
        }
    }
}

/// Lints a set of `(name, source)` pairs with the given config.
#[must_use]
pub fn lint_sources(cfg: Config, sources: &[(String, String)]) -> Report {
    let mut l = Linter::new(cfg);
    for (name, src) in sources {
        l.add_file(name, src);
    }
    l.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Report {
        lint_sources(Config::aq2pnn(), &[("test.rs".to_string(), src.to_string())])
    }

    fn rules(r: &Report) -> Vec<&'static str> {
        r.violations.iter().map(|v| v.rule.name()).collect()
    }

    #[test]
    fn flags_branch_on_secret_param() {
        let r = lint("fn f(x: &AShare) -> u64 { if x.as_tensor().get(0) > 2 { 1 } else { 0 } }");
        assert!(rules(&r).contains(&"secret-branch"), "{:?}", r.violations);
    }

    #[test]
    fn flags_secret_index_and_alloc() {
        let r = lint(
            "fn f(s: AShare, t: &[u64]) -> u64 {\n\
             let i = s.into_tensor().get(0) as usize;\n\
             let mut v = Vec::with_capacity(i);\n\
             v.push(1);\n\
             t[i]\n}",
        );
        assert!(rules(&r).contains(&"secret-index"), "{:?}", r.violations);
        assert!(rules(&r).contains(&"secret-alloc"), "{:?}", r.violations);
    }

    #[test]
    fn flags_sink_and_inline_capture() {
        let r = lint(
            "fn f(s: AShare) {\n\
             let w = s.into_tensor().get(0);\n\
             println!(\"leak {w}\");\n\
             panic!(\"{}\", w);\n}",
        );
        assert_eq!(
            rules(&r).iter().filter(|r| **r == "secret-sink").count(),
            2,
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn flags_raw_compare_outside_condition() {
        let r = lint("fn f(s: AShare, y: u64) -> bool { let b = s.into_tensor().get(0) == y; b }");
        assert!(rules(&r).contains(&"secret-compare"), "{:?}", r.violations);
    }

    #[test]
    fn sanitizers_neutralize() {
        let r = lint("fn f(s: &AShare) -> usize { let n = s.len(); if n > 3 { n } else { 0 } }");
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn recv_results_are_public() {
        let r = lint(
            "fn f(ep: &Endpoint) -> u64 { let m = ep.recv().unwrap(); if m.len() > 0 { 1 } else { 0 } }",
        );
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let r = lint(
            "fn f(s: AShare, t: &[u64]) -> u64 {\n\
             let i = s.into_tensor().get(0) as usize;\n\
             // secrecy: allow(secret-index, \"test table is public\")\n\
             t[i]\n}",
        );
        assert!(r.is_clean(), "{:?}", r.violations);
        assert!(r.allows[0].used);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let r = lint("// secrecy: allow(secret-index, \"nothing here\")\nfn f() {}\n");
        assert_eq!(rules(&r), vec!["unused-allow"]);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let r = lint("fn f() {} // secrecy: allow(secret-index)\n");
        assert!(rules(&r).contains(&"malformed-allow"), "{:?}", r.violations);
    }

    #[test]
    fn declassify_skips_function() {
        let r = lint(
            "// secrecy: declassify — mask is opened by protocol design\n\
             fn f(s: AShare) -> u64 { if s.into_tensor().get(0) > 0 { 1 } else { 0 } }",
        );
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn derive_debug_on_secret_type_is_a_sink() {
        let r = lint("#[derive(Debug, Clone)]\npub struct AShare(RingTensor);\n");
        assert!(rules(&r).contains(&"secret-sink"), "{:?}", r.violations);
    }

    #[test]
    fn cross_function_taint_propagates() {
        let r = lint(
            "fn inner(s: AShare) -> u64 { s.into_tensor().get(0) }\n\
             fn outer(s: AShare, t: &[u64]) -> u64 { t[inner(s) as usize] }",
        );
        assert!(rules(&r).contains(&"secret-index"), "{:?}", r.violations);
    }

    #[test]
    fn tests_are_skipped() {
        let r = lint(
            "#[cfg(test)]\nmod tests {\n fn helper(s: AShare, t: &[u64]) -> u64 { t[s.into_tensor().get(0) as usize] }\n}",
        );
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn match_on_secret_scrutinee() {
        let r = lint("fn f(g: BitGroup) -> u64 { match g.value { 0 => 1, _ => 2 } }");
        assert!(rules(&r).contains(&"secret-branch"), "{:?}", r.violations);
    }

    #[test]
    fn json_report_wellformed() {
        let r = lint("fn f(s: AShare) { println!(\"{}\", s.into_tensor().get(0)); }");
        let j = r.to_json();
        assert!(j.contains("\"secret-sink\""));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }
}
