//! Known-good secrecy patterns the taint pass must stay silent on.
//!
//! Public observables (lengths, shapes), protocol-level receives, and a
//! documented `declassify` reveal — the negative control for
//! `cargo xtask lint --self-test`.

/// Lengths and shapes are public by the cost model.
fn public_len(s: &AShare) -> usize {
    let n = s.len();
    if n > 3 {
        n
    } else {
        0
    }
}

/// Values received from the peer are public words by protocol design.
fn recv_public(ep: &Endpoint) -> u64 {
    let m = ep.recv().unwrap();
    if m.len() > 0 {
        1
    } else {
        0
    }
}

/// Documented reveal: the mask is opened by the A2BM protocol itself.
// secrecy: declassify — mask is opened by protocol design
fn open_masked(s: AShare) -> u64 {
    if s.into_tensor().get(0) > 0 {
        1
    } else {
        0
    }
}
