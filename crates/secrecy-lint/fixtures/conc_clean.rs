//! Known-good concurrency patterns the pass must stay silent on.
//!
//! Mirrors the idioms the real crates use: consistent lock order,
//! predicate-loop condvar waits, explicit `drop` before blocking calls,
//! condition temporaries that die at `{`, and a *reasoned, used*
//! allow annotation (sync namespace) for a sanctioned residual.

struct W {
    state: Mutex<u64>,
    q: Mutex<Vec<u64>>,
    cv: Condvar,
}

impl W {
    /// Consistent order everywhere in this file: `state` before `q`.
    fn tick(&self) {
        let st = self.state.lock().unwrap();
        let q = self.q.lock().unwrap();
        drop(q);
        drop(st);
    }

    /// Predicate loop around the wait, wait on the lock it holds.
    fn wait_predicate(&self) {
        let mut st = self.state.lock().unwrap();
        while *st == 0 {
            st = self.cv.wait(st).unwrap();
        }
        drop(st);
    }

    /// Notify pairs with the waiter above.
    fn bump(&self) {
        let mut st = self.state.lock().unwrap();
        *st += 1;
        drop(st);
        self.cv.notify_one();
    }

    /// Guard explicitly dropped before the blocking send.
    fn publish(&self, ep: &Endpoint) {
        let mut q = self.q.lock().unwrap();
        let item = q.pop();
        drop(q);
        ep.send(item);
    }

    /// Condition temporary dies at `{` — the sleep below runs unlocked.
    fn deep(&self) -> bool {
        if self.q.lock().unwrap().len() > 3 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            return true;
        }
        false
    }

    /// Sanctioned residual: the handoff protocol requires sending the
    /// final length while the queue is still closed.
    fn sanctioned(&self, ep: &Endpoint) {
        // sync: allow(blocking-while-locked, "fixture: handoff sends the final count under the queue lock by design")
        let q = self.q.lock().unwrap();
        ep.send(q.len());
        drop(q);
    }
}
