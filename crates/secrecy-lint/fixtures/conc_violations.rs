//! Seeded concurrency violations for `cargo xtask lint-concurrency --self-test`.
//!
//! This file is NOT compiled into any crate — it exists so CI can verify
//! the concurrency pass still detects every rule class. Inline markers
//! (`expect:` comments) pin each diagnostic to its exact line; the
//! self-test fails on any missing *or* extra diagnostic.

struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    q: Mutex<Vec<u64>>,
    cv: Condvar,
    lone: Condvar,
}

impl Pair {
    /// One half of the seeded deadlock: takes `a` then `b`.
    fn ordered(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap(); // expect: lock-order-cycle
        drop(gb);
        drop(ga);
    }

    /// The other half: takes `b` then `a`, closing the cycle.
    fn reversed(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }

    /// Channel send while holding a guard.
    fn blocking_send(&self, ep: &Endpoint) {
        let g = self.a.lock().unwrap(); // expect: blocking-while-locked
        ep.send(1);
        drop(g);
    }

    /// Condvar wait with no predicate loop around it.
    fn wait_no_loop(&self) {
        let mut g = self.a.lock().unwrap();
        g = self.cv.wait(g).unwrap(); // expect: condvar-misuse
        drop(g);
    }

    /// Condvar wait releases `a` but still holds `q` — a foreign guard
    /// pinned across the sleep.
    fn wait_foreign(&self) {
        let gq = self.q.lock().unwrap(); // expect: blocking-while-locked
        let mut ga = self.a.lock().unwrap();
        loop {
            ga = self.cv.wait(ga).unwrap();
        }
    }

    /// Notify on a condvar nobody anywhere waits on.
    fn notify_lone(&self) {
        self.lone.notify_all(); // expect: condvar-misuse
    }

    /// The critical section escapes through the return value.
    fn leak(&self) -> MutexGuard<'_, u64> { // expect: guard-escape
        self.a.lock().unwrap()
    }

    /// Copying out of the guard is fine — so this allow suppresses
    /// nothing and must itself fire.
    // sync: allow(guard-escape, "seeded unused annotation for the self-test") // expect: unused-allow
    fn no_guard(&self) -> u64 {
        *self.a.lock().unwrap()
    }

    /// Missing mandatory reason string.
    // sync: allow(lock-order-cycle) // expect: malformed-allow
    fn untouched(&self) {}
}
