//! Seeded violations for `cargo xtask lint --self-test`.
//!
//! This file is NOT compiled into any crate — it exists so CI can verify
//! the lint still detects every rule class. Each function below contains
//! exactly the kind of secret-dependent behavior the pass must flag.

/// secret-branch: control flow keyed on a share value.
fn seeded_branch(x: &AShare) -> u64 {
    let v = x.as_tensor().get(0);
    if v > 7 { // expect: secret-branch
        1
    } else {
        0
    }
}

/// secret-index: table lookup keyed on a share value.
fn seeded_index(x: AShare, table: &[u64]) -> u64 {
    let i = x.into_tensor().get(0) as usize;
    table[i] // expect: secret-index
}

/// secret-alloc: buffer sized from a share value.
fn seeded_alloc(x: AShare) -> Vec<u64> {
    let n = x.into_tensor().get(0) as usize;
    let mut buf = Vec::with_capacity(n); // expect: secret-alloc
    buf.push(0);
    buf
}

/// secret-sink: share value reaches a format sink (both arg and inline
/// capture forms).
fn seeded_sink(x: AShare) {
    let w = x.into_tensor().get(0);
    println!("observed {w}"); // expect: secret-sink
}

/// secret-compare: raw equality on shares instead of `ct::eq`.
fn seeded_compare(x: AShare, y: u64) -> bool {
    let b = x.into_tensor().get(0) == y; // expect: secret-compare
    b
}

/// unused-allow: annotation that suppresses nothing must itself fire.
// secrecy: allow(secret-branch, "seeded unused annotation for the self-test") // expect: unused-allow
fn seeded_unused_allow() -> u64 {
    42
}
