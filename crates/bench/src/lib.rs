//! Shared helpers for the table/figure harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; see DESIGN.md's per-experiment index. Run them with
//! `cargo run -p aq2pnn-bench --release --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::spec::ModelSpec;

/// A trained + quantized small model with its dataset.
pub struct TrainedModel {
    /// The float network (for float-baseline accuracy).
    pub net: FloatNet,
    /// The int8 quantized model.
    pub quant: QuantModel,
    /// Its dataset.
    pub data: SyntheticVision,
}

/// Trains `spec` on the standard synthetic tiny dataset and quantizes it.
///
/// # Panics
///
/// Panics if the spec is invalid or quantization fails (deterministic for
/// the in-repo specs).
#[must_use]
pub fn train_tiny(spec: &ModelSpec, epochs: usize, seed: u64) -> TrainedModel {
    let data = SyntheticVision::tiny(4, seed);
    let mut net = FloatNet::init(spec, seed + 1).expect("valid spec");
    net.train_epochs(&data, epochs, 8, 0.05);
    let quant = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())
        .expect("quantization succeeds");
    TrainedModel { net, quant, data }
}

/// Trains LeNet5 on the synthetic MNIST-like dataset and quantizes it.
///
/// # Panics
///
/// Panics on spec/quantization failure (deterministic).
#[must_use]
pub fn train_lenet(epochs: usize, seed: u64) -> TrainedModel {
    let data = SyntheticVision::mnist_like(seed);
    let mut net = FloatNet::init(&aq2pnn_nn::zoo::lenet5(), seed + 1).expect("valid spec");
    net.train_epochs(&data, epochs, 16, 0.05);
    let quant = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())
        .expect("quantization succeeds");
    TrainedModel { net, quant, data }
}

/// Maps a paper carrier bit-width (for models with ~12-bit values) onto
/// the equivalent carrier for our int8 tiny models, preserving *headroom*:
/// paper `b` bits over 12-bit values ≙ ours `b − 4` bits over 8-bit
/// values, minus one more bit because the synthetic tiny models calibrate
/// snugly (no out-of-range outliers), so their wrap point sits one bit
/// lower than an ImageNet model's. Documented in DESIGN.md.
#[must_use]
pub fn tiny_equivalent_bits(paper_bits: u32) -> u32 {
    paper_bits.saturating_sub(5).max(6)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_mapping() {
        assert_eq!(tiny_equivalent_bits(16), 11);
        assert_eq!(tiny_equivalent_bits(12), 7);
        assert_eq!(tiny_equivalent_bits(10), 6);
    }
}
