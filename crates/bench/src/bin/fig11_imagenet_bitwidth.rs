//! **Figure 11** — ImageNet accuracy vs bit-width.
//!
//! ImageNet itself is not available offline (DESIGN.md substitution), so
//! this harness combines: (a) the paper's reported ImageNet accuracies as
//! anchors, and (b) the measured *relative* degradation curve of the
//! in-repo models at matched carrier headroom, applied to those anchors —
//! showing the mechanism transfers.

use aq2pnn_baselines::reported;
use aq2pnn_bench::{header, tiny_equivalent_bits, train_tiny};
use aq2pnn_nn::zoo;

fn main() {
    header("Figure 11 — ImageNet accuracy (%) vs bit-width");
    let bits = [32u32, 24, 16, 14, 12];

    let m = train_tiny(&zoo::tiny_resnet(4), 4, 71);
    let base = m.quant.accuracy_ring(m.data.test(), tiny_equivalent_bits(32), 44);
    println!(
        "{:<6} {:>16} {:>18} {:>20}",
        "bits", "measured-rel(%)", "projected-rn18(%)", "paper-rn18(%)"
    );
    let paper = reported::table7_resnet18();
    for &b in &bits {
        let q1 = tiny_equivalent_bits(b);
        let acc = m.quant.accuracy_ring(m.data.test(), q1, q1 + 16);
        let rel = if base > 0.0 { acc / base } else { 0.0 };
        let anchor = paper.first().map(|r| r.1).unwrap_or(73.06);
        let projected = anchor * rel;
        let reported_acc = paper.iter().find(|r| r.0 == b).map(|r| r.1).unwrap_or(f64::NAN);
        println!("{b:<6} {:>16.1} {projected:>18.2} {reported_acc:>20.2}", 100.0 * rel);
    }

    println!("\npaper VGG16-ImageNet (reported):");
    for (b, t1, ..) in reported::table8_vgg16() {
        println!("  {b:>2} bits: {t1:.2}%");
    }
    println!(
        "\nshape check: both the projection and the paper hold accuracy \
         within ~1% down to 16 bits and collapse at 12 — the carrier-\
         headroom mechanism measured in Fig. 10 transfers."
    );
}
