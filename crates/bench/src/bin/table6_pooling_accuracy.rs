//! **Table 6** — Max pooling vs Average pooling accuracy (retrained).
//!
//! Measured on in-repo trained models (dataset substitution per
//! DESIGN.md); the paper's ImageNet rows are printed as reported.

use aq2pnn_baselines::reported;
use aq2pnn_bench::{header, train_tiny};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;

fn main() {
    header("Table 6 — Max vs Average pooling accuracy (%)");
    println!("{:<24} {:>12} {:>12}", "model", "AvgPool", "MaxPool");

    // Measured (smooth task): identical architecture/seed, pooling
    // swapped, retrained — both poolings suffice here.
    let mut max_m = train_tiny(&zoo::tiny_cnn(4), 5, 77);
    let mut avg_m = train_tiny(&zoo::tiny_cnn_avgpool(4), 5, 77);
    let max_acc = 100.0 * max_m.net.accuracy(max_m.data.test());
    let avg_acc = 100.0 * avg_m.net.accuracy(avg_m.data.test());
    println!(
        "{:<24} {avg_acc:>12.2} {max_acc:>12.2}  [measured, smooth task]",
        "tiny-cnn-synthetic"
    );
    let qmax = 100.0 * max_m.quant.accuracy(max_m.data.test());
    let qavg = 100.0 * avg_m.quant.accuracy(avg_m.data.test());
    println!("{:<24} {qavg:>12.2} {qmax:>12.2}  [measured, int8]", "tiny-cnn (quantized)");

    // Measured (peak-detection task): the regime where max pooling
    // matters — class evidence lives in sparse spikes that average
    // pooling dilutes (the mechanism behind the paper's ImageNet gaps).
    let spiky = SyntheticVision::spiky(8, 7);
    let mut rows = Vec::new();
    for (label, spec) in [("max", zoo::tiny_cnn(8)), ("avg", zoo::tiny_cnn_avgpool(8))] {
        let mut net = FloatNet::init(&spec, 9).expect("valid spec");
        net.train_epochs(&spiky, 6, 8, 0.05);
        let facc = 100.0 * net.accuracy(spiky.test());
        let q = QuantModel::quantize(&net, &spiky.calibration(32), &QuantConfig::int8())
            .expect("quantizes");
        let qacc = 100.0 * q.accuracy(spiky.test());
        rows.push((label, facc, qacc));
    }
    let (max_f, max_q) = (rows[0].1, rows[0].2);
    let (avg_f, avg_q) = (rows[1].1, rows[1].2);
    println!("{:<24} {avg_f:>12.2} {max_f:>12.2}  [measured, spiky task]", "tiny-cnn-spiky");
    println!(
        "{:<24} {avg_q:>12.2} {max_q:>12.2}  [measured, spiky int8]",
        "tiny-cnn-spiky (quant)"
    );

    for (model, avg, max) in reported::table6_pooling() {
        println!("{model:<24} {avg:>12.2} {max:>12.2}  [reported]");
    }

    println!(
        "\nshape check: max pooling retains higher accuracy than average \
         pooling on the same architecture (paper: 2.6–7.7 pp gap)."
    );
}
