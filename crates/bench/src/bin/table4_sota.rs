//! **Table 4** — AQ2PNN vs SOTA: throughput, communication, power,
//! energy efficiency.
//!
//! SOTA rows (Falcon / CryptFlow / CryptGPU) and the paper's own AQ2PNN
//! rows are reported numbers, exactly as the paper sources them. The
//! `AQ2PNN (ours)` rows are produced by this reproduction: the INST Q
//! compiler over the real architecture specs plus the ZCU104 cycle /
//! power / network models.

use aq2pnn::instq::compile_spec;
use aq2pnn::ProtocolConfig;
use aq2pnn_accel::hw::HwConfig;
use aq2pnn_accel::perf::estimate;
use aq2pnn_baselines::reported::{table4, System};
use aq2pnn_bench::header;
use aq2pnn_nn::spec::ModelSpec;
use aq2pnn_nn::zoo;

fn ours(spec: &ModelSpec) -> (f64, f64, f64, f64) {
    let cfg = ProtocolConfig::paper(16);
    let program = compile_spec(spec, &cfg).expect("spec compiles");
    let r = estimate(&program, &HwConfig::zcu104());
    (r.fps, r.comm_mib, r.party_watts, r.efficiency)
}

fn main() {
    header("Table 4 — AQ2PNN vs SOTA");
    println!(
        "{:<20} {:<18} {:>9} {:>10} {:>10} {:>12}",
        "workload", "system", "Tput(fps)", "Comm(MiB)", "Power(W)", "Eff(fps/W)"
    );
    let workloads: [(&str, ModelSpec); 5] = [
        ("lenet5-mnist", zoo::lenet5()),
        ("alexnet-mnist", zoo::alexnet_mnist()),
        ("vgg16-cifar10", zoo::vgg16_cifar()),
        ("resnet50-imagenet", zoo::resnet50_imagenet()),
        ("vgg16-imagenet", zoo::vgg16_imagenet()),
    ];
    let rows = table4();
    for (wl, spec) in workloads {
        for r in rows.iter().filter(|r| r.workload == wl) {
            let tag = "[reported]";
            println!(
                "{:<20} {:<18} {:>9.3} {:>10.2} {:>7.0} x{} {:>12.6} {tag}",
                wl,
                r.system.name(),
                r.tput_fps,
                r.comm_mib,
                r.power_w,
                r.machines,
                r.efficiency
            );
        }
        let (fps, comm, watts, eff) = ours(&spec);
        println!(
            "{:<20} {:<18} {:>9.3} {:>10.2} {:>7.1} x2 {:>12.6} [modeled]",
            wl, "AQ2PNN (ours)", fps, comm, watts, eff
        );
        println!();
    }

    // Headline shape checks.
    let aq_rn50 = ours(&zoo::resnet50_imagenet());
    let gpu = rows
        .iter()
        .find(|r| r.system == System::CryptGpu && r.workload == "resnet50-imagenet")
        .expect("row exists");
    println!(
        "headline: ours vs CryptGPU (ResNet50) — efficiency {:.1}× (paper: 26.3×), comm {:.2}× (paper: 2.75×)",
        aq_rn50.3 / gpu.efficiency,
        gpu.comm_mib / aq_rn50.1,
    );
}
