//! **Table 5** — operator-wise profiling of ResNet50's 6th building block
//! at 32 vs 16 bits: 2PC-Conv2D / ABReLU / 2PC-BNReQ latency and total
//! communication.
//!
//! Latency comes from the cycle model + network model; per-operator
//! attribution follows the instruction classes (GEMM + conv exchanges →
//! Conv2D; MulShift ALU passes → BNReQ; Compare + abrelu exchanges →
//! ABReLU).

use aq2pnn::instq::{compile_spec, AluKind, Instr};
use aq2pnn::ProtocolConfig;
use aq2pnn_accel::hw::HwConfig;
use aq2pnn_accel::perf::instr_cycles;
use aq2pnn_baselines::reported;
use aq2pnn_bench::header;
use aq2pnn_nn::zoo;

#[derive(Default)]
struct OpProfile {
    conv_s: f64,
    bnreq_s: f64,
    abrelu_s: f64,
    comm_bytes: u64,
}

fn profile(bits: u32, hw: &HwConfig) -> OpProfile {
    let cfg = ProtocolConfig::paper(bits);
    let p = compile_spec(&zoo::resnet50_building_block6(), &cfg).expect("block compiles");
    let mut prof = OpProfile::default();
    for i in &p.instrs {
        let secs = instr_cycles(i, hw) as f64 / hw.clock_hz;
        match i {
            Instr::Gemm { .. } => prof.conv_s += secs,
            Instr::Alu { kind: AluKind::MulShift, .. } => prof.bnreq_s += secs,
            Instr::Alu { .. } | Instr::LoadWeights { .. } => prof.conv_s += secs,
            Instr::Compare { .. } => prof.abrelu_s += secs,
            Instr::Exchange { label, user_bytes, provider_bytes, user_msgs, provider_msgs } => {
                if label.starts_with("offline") {
                    continue;
                }
                let bytes = user_bytes + provider_bytes;
                let t = hw.network.transfer_seconds(bytes / 2, (user_msgs + provider_msgs) / 2);
                prof.comm_bytes += bytes;
                if label.starts_with("abrelu") || label.starts_with("maxpool") {
                    prof.abrelu_s += t;
                } else {
                    prof.conv_s += t;
                }
            }
        }
    }
    prof
}

fn main() {
    header("Table 5 — operator profiling, ResNet50 building block 6");
    let hw = HwConfig::zcu104();
    println!(
        "{:<6} {:>14} {:>12} {:>13} {:>11}",
        "bits", "2PC-Conv2D(ms)", "ABReLU(ms)", "2PC-BNReQ(ms)", "Comm(MiB)"
    );
    let mut ours = Vec::new();
    for bits in [32u32, 16] {
        let p = profile(bits, &hw);
        println!(
            "{bits:<6} {:>14.2} {:>12.2} {:>13.2} {:>11.2}  [modeled]",
            1e3 * p.conv_s,
            1e3 * p.abrelu_s,
            1e3 * p.bnreq_s,
            p.comm_bytes as f64 / (1024.0 * 1024.0)
        );
        ours.push(p);
    }
    for (bits, conv, abrelu, bnreq, comm) in reported::table5_block6() {
        println!("{bits:<6} {conv:>14.2} {abrelu:>12.2} {bnreq:>13.2} {comm:>11.2}  [reported]");
    }

    let speedup = ours[0].abrelu_s / ours[1].abrelu_s;
    println!(
        "\nshape check: halving the bit-width cuts ABReLU time by {speedup:.2}× \
         (paper: 140.01→65.83 ms ≈ 2.13×); BNReQ is AS-ALU-only so it \
         barely moves — both reproduced."
    );
}
