//! Kernel-dispatch regression gate (CI threshold check).
//!
//! Compares the `dispatch_speedups` rows of a fresh `BENCH_kernels.json`
//! (produced by `cargo bench -p aq2pnn-bench --bench kernels`, path
//! override `BENCH_KERNELS_JSON`) against the committed
//! `BENCH_kernels_baseline.json` (override `BENCH_KERNELS_BASELINE`) and
//! exits nonzero when a specialized kernel lost more than
//! `KERNEL_GATE_MAX_REGRESSION_PCT` (default 10) of its recorded win.
//!
//! The rows are **relative** quantities — each ISA kernel's speedup over
//! the scalar dispatch kernel (`vs_scalar`) and over the pre-dispatch
//! generic implementation (`vs_reference`) at the same ring width, both
//! measured in the same process minutes apart — so they transfer across
//! machines in a way raw ns/iter never would. Rows whose baseline ratio
//! is below `KERNEL_GATE_MIN_WIN` (default 1.2) are reported but not
//! gated: near-parity rows (e.g. a memory-bound fill where the vector
//! unit can't win) would otherwise flap on scheduler noise, and a ratio
//! hovering at 1.0 has no win to protect.
//!
//! Baseline rows for ISAs the host CPU does not support are skipped with
//! a loud warning (the x86 baseline carries AVX rows a CI aarch64 runner
//! can't measure); a baseline row whose ISA *is* supported but is missing
//! from the fresh run fails the gate — silently dropping a kernel from
//! the bench must not read as green.

use aq2pnn_ring::IsaLevel;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Row {
    kernel: String,
    l: u32,
    isa: String,
    vs_scalar: f64,
    vs_reference: f64,
}

/// Extracts `"name": "value"` from a single JSON row line.
fn field_str(line: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\": \"");
    let at = line.find(&key)? + key.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"name": <number>` from a single JSON row line.
fn field_num(line: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\": ");
    let at = line.find(&key)? + key.len();
    let rest = &line[at..];
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Line-oriented parse of the `dispatch_speedups` array — the reports are
/// emitted one row per line by this workspace's own writers, and the
/// offline workspace carries no JSON dependency.
fn parse_rows(path: &str) -> Result<Vec<Row>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("kernel-gate: read {path}: {e}"))?;
    let mut rows = Vec::new();
    let mut in_section = false;
    for line in text.lines() {
        if line.contains("\"dispatch_speedups\"") {
            in_section = true;
            continue;
        }
        if !in_section {
            continue;
        }
        if line.trim_start().starts_with(']') {
            break;
        }
        let row = (|| {
            Some(Row {
                kernel: field_str(line, "kernel")?,
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                l: field_num(line, "l")? as u32,
                isa: field_str(line, "isa")?,
                vs_scalar: field_num(line, "vs_scalar")?,
                vs_reference: field_num(line, "vs_reference")?,
            })
        })();
        match row {
            Some(r) => rows.push(r),
            None => return Err(format!("kernel-gate: malformed row in {path}: {line}")),
        }
    }
    if !in_section {
        return Err(format!("kernel-gate: no dispatch_speedups section in {path}"));
    }
    Ok(rows)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> ExitCode {
    let max_pct = env_f64("KERNEL_GATE_MAX_REGRESSION_PCT", 10.0);
    let min_win = env_f64("KERNEL_GATE_MIN_WIN", 1.2);
    let fresh_path =
        std::env::var("BENCH_KERNELS_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let base_path = std::env::var("BENCH_KERNELS_BASELINE")
        .unwrap_or_else(|_| "BENCH_kernels_baseline.json".to_string());

    let (baseline, fresh) = match (parse_rows(&base_path), parse_rows(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for e in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "kernel-gate: {} baseline rows ({base_path}) vs {} fresh rows ({fresh_path}), \
         max regression {max_pct}%, min gated win {min_win}x",
        baseline.len(),
        fresh.len()
    );

    let mut failures = 0u32;
    let mut skipped = 0u32;
    let mut gated = 0u32;
    for b in &baseline {
        let Some(isa) = IsaLevel::parse(&b.isa) else {
            eprintln!("kernel-gate: FAIL — baseline row has unknown ISA {:?}", b.isa);
            failures += 1;
            continue;
        };
        if !isa.supported() {
            println!(
                "kernel-gate: WARN — skipping {}/l{}/{}: ISA not supported on this host",
                b.kernel, b.l, b.isa
            );
            skipped += 1;
            continue;
        }
        let Some(f) = fresh.iter().find(|f| f.kernel == b.kernel && f.l == b.l && f.isa == b.isa)
        else {
            eprintln!(
                "kernel-gate: FAIL — {}/l{}/{} present in baseline but missing from fresh run",
                b.kernel, b.l, b.isa
            );
            failures += 1;
            continue;
        };
        for (metric, base, now) in [
            ("vs_scalar", b.vs_scalar, f.vs_scalar),
            ("vs_reference", b.vs_reference, f.vs_reference),
        ] {
            let floor = base * (1.0 - max_pct / 100.0);
            let verdict = if base < min_win {
                "info"
            } else if now < floor {
                failures += 1;
                "FAIL"
            } else {
                gated += 1;
                "ok"
            };
            println!(
                "kernel-gate: {verdict:>4} {}/l{}/{} {metric}: baseline {base:.3}x, \
                 now {now:.3}x (floor {floor:.3}x)",
                b.kernel, b.l, b.isa
            );
        }
    }
    if failures > 0 {
        eprintln!("kernel-gate: FAIL — {failures} regression(s) beyond {max_pct}%");
        return ExitCode::FAILURE;
    }
    println!("kernel-gate: PASS — {gated} gated metrics within {max_pct}%, {skipped} rows skipped");
    ExitCode::SUCCESS
}
