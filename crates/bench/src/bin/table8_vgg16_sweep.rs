//! **Table 8** — VGG16-ImageNet bit-width sweep (companion of Table 7).

use aq2pnn::instq::compile_spec;
use aq2pnn::ProtocolConfig;
use aq2pnn_accel::hw::HwConfig;
use aq2pnn_accel::perf::estimate;
use aq2pnn_baselines::reported;
use aq2pnn_bench::{header, tiny_equivalent_bits, train_tiny};
use aq2pnn_nn::spec::ModelSpec;
use aq2pnn_nn::zoo;

fn sweep(spec: &ModelSpec, pool_label: &str, acc_model: &aq2pnn_bench::TrainedModel) {
    println!("--- {} ({pool_label}) ---", spec.name);
    println!("{:<6} {:>12} {:>10} {:>11}", "bits", "acc-proxy(%)", "Tput(fps)", "Comm(MiB)");
    let hw = HwConfig::zcu104();
    for bits in [32u32, 24, 16, 14, 12] {
        let cfg = ProtocolConfig::paper(bits);
        let p = compile_spec(spec, &cfg).expect("spec compiles");
        let perf = estimate(&p, &hw);
        let q1 = tiny_equivalent_bits(bits);
        let acc = 100.0 * acc_model.quant.accuracy_ring(acc_model.data.test(), q1, q1 + 16);
        println!(
            "{bits:<6} {acc:>12.2} {:>10.3} {:>11.1}  [modeled/measured]",
            perf.fps, perf.comm_mib
        );
    }
}

fn main() {
    header("Table 8 — VGG16-ImageNet bit-width sweep");
    // VGG-style accuracy proxy: the pooled feed-forward tiny CNN.
    let acc_model = train_tiny(&zoo::tiny_cnn(4), 4, 52);
    let acc_model_avg = train_tiny(&zoo::tiny_cnn_avgpool(4), 4, 52);

    sweep(&zoo::vgg16_imagenet(), "Max pooling", &acc_model);
    sweep(&zoo::vgg16_imagenet().with_avg_pooling(), "Average pooling", &acc_model_avg);

    println!("\n--- paper (reported) ---");
    println!(
        "{:<6} {:>9} {:>10} {:>11} | {:>9} {:>10} {:>11}",
        "bits", "Top1-max", "fps-max", "comm-max", "Top1-avg", "fps-avg", "comm-avg"
    );
    for (bits, t1m, fm, cm, t1a, fa, ca) in reported::table8_vgg16() {
        println!("{bits:<6} {t1m:>9.2} {fm:>10.3} {cm:>11.1} | {t1a:>9.2} {fa:>10.3} {ca:>11.1}");
    }
    println!(
        "\nshape checks as Table 7; additionally VGG16's many max-pool \
         layers make its avg-pool comm saving larger than ResNet18's."
    );
}
