//! **Table 3** — FPGA resource consumption: AQ2PNN vs VTA (plaintext).

use aq2pnn_accel::hw::HwConfig;
use aq2pnn_accel::resources::{
    aq2pnn_total, as_alu, buffers, gemm_array, load_store_control, paper_reference, sec_comm,
    vta_baseline,
};
use aq2pnn_bench::header;

fn main() {
    let hw = HwConfig::zcu104();
    header("Table 3 — resource consumption");
    println!("{:<28} {:>9} {:>9} {:>6} {:>7}", "module", "LUT", "FF", "DSP", "BRAM");
    for (name, r) in [
        ("AS-GEMM array (256 C-C MU)", gemm_array(&hw)),
        ("AS-ALU", as_alu(&hw)),
        ("Sec-COMM (A2BM+SCM+OT)", sec_comm(&hw)),
        ("buffers (Fig. 1)", buffers(&hw)),
        ("LOAD/STORE + INST Q", load_store_control(&hw)),
    ] {
        println!("{name:<28} {:>9} {:>9} {:>6} {:>7.1}", r.lut, r.ff, r.dsp, r.bram);
    }
    let total = aq2pnn_total(&hw);
    let paper = paper_reference();
    let vta = vta_baseline();
    println!("{:-<62}", "");
    println!(
        "{:<28} {:>9} {:>9} {:>6} {:>7.1}  ×2 parties",
        "AQ2PNN total (model)", total.lut, total.ff, total.dsp, total.bram
    );
    println!(
        "{:<28} {:>9} {:>9} {:>6} {:>7.1}  ×2 parties",
        "AQ2PNN total (paper)", paper.lut, paper.ff, paper.dsp, paper.bram
    );
    println!(
        "{:<28} {:>9} {:>9} {:>6} {:>7.1}",
        "VTA (paper, plaintext)", vta.lut, vta.ff, vta.dsp, vta.bram
    );
    println!(
        "\n2PC tax: {:.1}× LUT, {:.1}× DSP over the plaintext VTA datapath.",
        total.lut as f64 / vta.lut as f64,
        total.dsp as f64 / vta.dsp as f64
    );
}
