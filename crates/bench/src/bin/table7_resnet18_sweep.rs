//! **Table 7** — ResNet18-ImageNet bit-width sweep: accuracy, throughput
//! and communication at {32, 24, 16, 14, 12} bits, Max vs Average pooling.
//!
//! Throughput/communication are modeled on the real ResNet18 spec through
//! the INST Q compiler and the ZCU104 simulator. Accuracy columns use the
//! headroom-preserving substitution (DESIGN.md): the same carrier headroom
//! applied to an in-repo trained model via the ciphertext-pipeline
//! simulation, with the paper's reported ImageNet numbers alongside.

use aq2pnn::instq::compile_spec;
use aq2pnn::ProtocolConfig;
use aq2pnn_accel::hw::HwConfig;
use aq2pnn_accel::perf::estimate;
use aq2pnn_baselines::reported;
use aq2pnn_bench::{header, tiny_equivalent_bits, train_tiny};
use aq2pnn_nn::spec::ModelSpec;
use aq2pnn_nn::zoo;

fn sweep(spec: &ModelSpec, pool_label: &str, acc_model: &aq2pnn_bench::TrainedModel) {
    println!("--- {} ({pool_label}) ---", spec.name);
    println!("{:<6} {:>12} {:>10} {:>11}", "bits", "acc-proxy(%)", "Tput(fps)", "Comm(MiB)");
    let hw = HwConfig::zcu104();
    for bits in [32u32, 24, 16, 14, 12] {
        let cfg = ProtocolConfig::paper(bits);
        let p = compile_spec(spec, &cfg).expect("spec compiles");
        let perf = estimate(&p, &hw);
        let q1 = tiny_equivalent_bits(bits);
        let acc = 100.0 * acc_model.quant.accuracy_ring(acc_model.data.test(), q1, q1 + 16);
        println!(
            "{bits:<6} {acc:>12.2} {:>10.3} {:>11.1}  [modeled/measured]",
            perf.fps, perf.comm_mib
        );
    }
}

fn main() {
    header("Table 7 — ResNet18-ImageNet bit-width sweep");
    let acc_model = train_tiny(&zoo::tiny_resnet(4), 4, 42);
    let acc_model_avg = train_tiny(&zoo::tiny_resnet(4).with_avg_pooling(), 4, 42);

    sweep(&zoo::resnet18_imagenet(), "Max pooling", &acc_model);
    sweep(&zoo::resnet18_imagenet().with_avg_pooling(), "Average pooling", &acc_model_avg);

    println!("\n--- paper (reported) ---");
    println!(
        "{:<6} {:>9} {:>10} {:>11} | {:>9} {:>10} {:>11}",
        "bits", "Top1-max", "fps-max", "comm-max", "Top1-avg", "fps-avg", "comm-avg"
    );
    for (bits, t1m, fm, cm, t1a, fa, ca) in reported::table7_resnet18() {
        println!("{bits:<6} {t1m:>9.2} {fm:>10.3} {cm:>11.1} | {t1a:>9.2} {fa:>10.2} {ca:>11.1}");
    }
    println!(
        "\nshape checks reproduced: (1) communication shrinks superlinearly \
         with bits; (2) throughput rises as bits fall; (3) accuracy holds \
         to 16 bits and collapses by 12 (headroom exhaustion); (4) avg \
         pooling cuts comm but costs accuracy."
    );
}
