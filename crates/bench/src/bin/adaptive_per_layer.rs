//! **Extension** — true per-layer ring adaptivity.
//!
//! The paper's adaptivity is uniform per model (one `Q1` per network,
//! `Q2 = Q1 + 16`) but the text claims the FPGA can "adapt the data
//! bit-width of different DNN layers". This harness realizes that claim at
//! the compiler level: every GEMM layer exchanges its masks on the
//! smallest worst-case-safe ring (from the planner's per-layer accumulator
//! analysis), and the effect on online communication is measured against
//! the uniform configuration.

use aq2pnn::instq::{compile_spec, compile_spec_per_layer};
use aq2pnn::planner::AdaptivePlan;
use aq2pnn::ProtocolConfig;
use aq2pnn_bench::{header, train_tiny};
use aq2pnn_nn::zoo;

fn main() {
    header("Extension — per-layer adaptive MAC rings");
    let cfg = ProtocolConfig::paper(16);
    println!("{:<22} {:>14} {:>14} {:>9}", "model", "uniform(MiB)", "per-layer(MiB)", "delta");
    for spec in [
        zoo::lenet5(),
        zoo::alexnet_cifar(),
        zoo::vgg16_cifar(),
        zoo::resnet18_imagenet(),
        zoo::resnet50_imagenet(),
        zoo::vgg16_imagenet(),
    ] {
        let uniform = compile_spec(&spec, &cfg).expect("compiles").online_total_mib();
        let adaptive = compile_spec_per_layer(&spec, &cfg, 8).expect("compiles").online_total_mib();
        println!(
            "{:<22} {uniform:>14.2} {adaptive:>14.2} {:>8.1}%",
            spec.name,
            100.0 * (adaptive - uniform) / uniform
        );
    }

    // Show the planner's per-layer analysis for one model.
    let m = train_tiny(&zoo::tiny_cnn(4), 1, 7);
    let plan = AdaptivePlan::new(&m.quant, 16);
    println!("\nplanner per-layer accumulator analysis (tiny-cnn, q1=16):");
    println!("{:<8} {:<6} {:>8} {:>12} {:>10}", "layer", "kind", "fan-in", "accum bits", "min Q2");
    for l in &plan.layers {
        println!(
            "{:<8} {:<6} {:>8} {:>12} {:>10}",
            l.layer, l.kind, l.fan_in, l.accum_bits, l.min_q2_bits
        );
    }
    println!(
        "\nuniform Q2 = {} bits; worst-case layer needs {} bits ({}).",
        plan.q2_bits,
        plan.worst_accum_bits(),
        if plan.worst_case_safe { "safe" } else { "relies on cancellation" }
    );
}
