//! **Figure 7** — the quadrant map of `x ← (x_i + x_j) mod Q`.
//!
//! Plots (ASCII) the sign of the hidden `x` over the `(−x_i, x_j)` plane
//! for an 8-bit ring, verifies the quadrant decision rules exhaustively,
//! and reports how often the top-2-bit quadrant detection short-circuits
//! the comparison (the paper's efficiency argument).

use aq2pnn::abrelu::{quadrant_decides, sign_from_codes};
use aq2pnn_bench::header;
use aq2pnn_ring::Ring;
use aq2pnn_sharing::a2b::split_groups;

fn codes(ring: Ring, u: u64, v: u64) -> Vec<u64> {
    split_groups(ring, u)
        .iter()
        .zip(&split_groups(ring, v))
        .map(|(a, b)| match a.value.cmp(&b.value) {
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Equal => 2,
            std::cmp::Ordering::Greater => 3,
        })
        .collect()
}

fn main() {
    header("Figure 7 — quadrant map of (x_i + x_j) mod Q, 8-bit ring");
    let ring = Ring::new(8);

    // ASCII map: rows = x_j from +127 down to -128, cols = -x_i.
    // '+' x > 0, '-' x < 0, '0' x == 0; downsampled 4:1.
    println!("rows: x_j = +124 … -128 (step 8); cols: -x_i = -128 … +124 (step 8)");
    for row in (0..32).rev() {
        let xj = ring.encode_signed(row * 8 - 128);
        let mut line = String::new();
        for col in 0..32 {
            let neg_xi = ring.encode_signed(col * 8 - 128);
            let xi = ring.neg(neg_xi);
            let x = ring.decode_signed(ring.add(xi, xj));
            line.push(if x > 0 {
                '+'
            } else if x < 0 {
                '-'
            } else {
                '0'
            });
        }
        println!("{line}");
    }

    // Exhaustive verification + quadrant short-circuit census.
    let mut checked = 0u64;
    let mut early = 0u64;
    for xi in 0..256u64 {
        for xj in 0..256u64 {
            let u = ring.neg(xi);
            let c = codes(ring, u, xj);
            let want = ring.decode_signed(ring.add(xi, xj)) > 0;
            assert_eq!(sign_from_codes(&c), want, "xi={xi} xj={xj}");
            if quadrant_decides(c[0], c[1]) {
                early += 1;
            }
            checked += 1;
        }
    }
    println!("\nverified sign_from_codes on all {checked} share pairs ✓");
    println!(
        "quadrant detection (top-2 bits) decides {early}/{checked} pairs \
         ({:.1}%) without the full group comparison — the paper's red-①\
         shortcut.",
        100.0 * early as f64 / checked as f64
    );
}
