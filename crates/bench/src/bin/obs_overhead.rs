//! Tracing-overhead gate for the nonlinear hot path (CI threshold check).
//!
//! A traced run of `secure_sign` opens three stage spans per party per
//! batch (`a2bm`, `ot-flow`, `reveal`); everywhere else the hot loop only
//! pays an `is_enabled()` check on a disabled tracer. This binary proves
//! the whole observability layer stays out of the protocol's way: it
//! times full two-party `secure_sign` batches with span recording on and
//! off, interleaved trial-by-trial so drift hits both variants equally,
//! takes the per-variant **minimum** over the trials (the classic
//! low-noise wall-clock estimator: every disturbance only ever adds
//! time), and exits nonzero when the traced minimum exceeds the untraced
//! one by more than the threshold (`OBS_OVERHEAD_MAX_PCT`, default 3).
//! The engine is pinned to one thread for the measurement — fan-out
//! scheduling jitter at conv-layer batch sizes is an order of magnitude
//! larger than the tracing cost this gate is after.
//!
//! Before any timing, both variants run once and the sign flags are
//! checked against the plaintext `(x_0 + x_1) mod Q > 0` — the gate can
//! never pass on a run that broke the protocol. The leakage harness
//! separately proves the traced wire transcript is byte-identical; this
//! binary guards the *time* axis.
//!
//! A second gate covers the **server online pass**: full `run_client`
//! sessions against an in-process [`aq2pnn_server::InferenceServer`]
//! with the whole telemetry stack off (no-op metrics, no recorder, no
//! SLO) vs. on (recording registry, per-session flight recorder, SLO
//! histograms, and a live admin scraper polling `/metrics` throughout).
//! The timed interval is the client-observed secure online pass
//! ([`aq2pnn_server::ClientRun::online_ns`]); the same minimum-of-trials
//! estimator and threshold apply.
//!
//! The run emits `BENCH_obs_overhead.json` (override with
//! `BENCH_OBS_OVERHEAD_JSON`) so CI can archive the measurement next to
//! the kernel and nonlinear numbers.

use aq2pnn::abrelu::secure_sign;
use aq2pnn::sim::run_pair;
use aq2pnn::substrate::obs::{MetricsRegistry, Tracer};
use aq2pnn::{ProtocolConfig, ReluMode};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_server::{
    demo_model, mem_acceptor, run_client, ClientConfig, InferenceServer, MemConnector,
    ModelRegistry, ServerConfig, ServerObs,
};
use aq2pnn_sharing::{AShare, PartyId};
use rand::SeedableRng;
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// (ring bits, batch elements): the paper's INT12/INT16 activation
/// carriers at a conv-layer-sized batch.
const CASES: &[(u32, usize)] = &[(12, 16384), (16, 16384)];

fn make_shares(bits: u32, n: usize) -> (Vec<u64>, Vec<u64>, Vec<u8>) {
    let ring = Ring::new(bits);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0b5e ^ u64::from(bits) ^ n as u64);
    let s0: Vec<u64> = (0..n).map(|_| ring.sample(&mut rng)).collect();
    let s1: Vec<u64> = (0..n).map(|_| ring.sample(&mut rng)).collect();
    let expect: Vec<u8> = s0
        .iter()
        .zip(&s1)
        .map(|(&a, &b)| u8::from(ring.decode_signed(ring.add(a, b)) > 0))
        .collect();
    (s0, s1, expect)
}

/// One full two-party `secure_sign` batch; `traced` attaches an enabled
/// span recorder + metric store to each party before the run.
fn run_sign(cfg: &ProtocolConfig, s0: &[u64], s1: &[u64], traced: bool) -> Vec<u8> {
    let ring = cfg.q1();
    let (s0, s1) = (s0.to_vec(), s1.to_vec());
    let (flags, _) = run_pair(cfg, move |ctx| {
        if traced {
            ctx.set_obs(Tracer::new(), MetricsRegistry::new());
        }
        let raw = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        let t = RingTensor::from_raw(ring, vec![raw.len()], raw).unwrap();
        let share = AShare::from_tensor(t);
        secure_sign(ctx, &share, ReluMode::RevealedSign).unwrap().flags.unwrap()
    });
    flags
}

/// Wall-clock ns/iter over `iters` back-to-back batches, timed on the
/// user party's thread *inside* the protocol closure — thread
/// spawn/join, context setup and share construction stay outside the
/// measured interval, leaving only the protocol (and any tracing cost
/// injected into it).
fn time_sign(cfg: &ProtocolConfig, s0: &[u64], s1: &[u64], traced: bool, iters: u32) -> f64 {
    let ring = cfg.q1();
    let (s0, s1) = (s0.to_vec(), s1.to_vec());
    let (user_ns, _) = run_pair(cfg, move |ctx| {
        if traced {
            ctx.set_obs(Tracer::new(), MetricsRegistry::new());
        }
        let raw = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        let t = RingTensor::from_raw(ring, vec![raw.len()], raw).unwrap();
        let share = AShare::from_tensor(t);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(secure_sign(ctx, &share, ReluMode::RevealedSign).unwrap());
        }
        start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
    });
    user_ns
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One in-process inference server, telemetry fully off or fully on.
struct ServerVariant {
    server: InferenceServer,
    dial: MemConnector,
    admin: Option<std::net::SocketAddr>,
    flightrec_dir: Option<std::path::PathBuf>,
}

fn start_server(model: &aq2pnn_nn::quant::QuantModel, traced: bool) -> ServerVariant {
    let flightrec_dir = traced
        .then(|| std::env::temp_dir().join(format!("aq2pnn-obs-overhead-{}", std::process::id())));
    let cfg = ServerConfig {
        max_sessions: 2,
        queue_depth: 2,
        slo_ms: traced.then_some(600_000),
        flightrec_dir: flightrec_dir.clone(),
        ..ServerConfig::default()
    };
    let mut registry = ModelRegistry::new();
    registry.insert("tiny", model.clone());
    let (acc, dial) = mem_acceptor();
    let obs = if traced {
        ServerObs { metrics: MetricsRegistry::new(), ..ServerObs::default() }
    } else {
        ServerObs::default()
    };
    let mut server = InferenceServer::start(Box::new(acc), cfg, registry, obs);
    let admin = traced.then(|| server.start_admin("127.0.0.1:0").expect("admin endpoint"));
    ServerVariant { server, dial, admin, flightrec_dir }
}

/// One full client session; returns the client-observed online-pass
/// nanoseconds (admission, session setup and preparation excluded).
fn client_online_ns(
    dial: &MemConnector,
    model: &aq2pnn_nn::quant::QuantModel,
    images: &[&[f32]],
) -> f64 {
    let cfg = ClientConfig {
        model: "tiny".into(),
        q1_bits: 16,
        batch: images.len(),
        ..ClientConfig::default()
    };
    let run = run_client(dial.connect().expect("connect"), &cfg, model, images)
        .expect("overhead-gate client session");
    #[allow(clippy::cast_precision_loss)]
    let ns = run.online_ns as f64;
    ns
}

/// The server-online-path overhead case: min-of-trials online-pass time
/// against a telemetry-off server vs. a fully instrumented one being
/// scraped throughout.
fn server_case(
    model: &aq2pnn_nn::quant::QuantModel,
    images: &[Vec<f32>],
    trials: usize,
) -> CaseResult {
    let refs: Vec<&[f32]> = images.iter().map(Vec::as_slice).collect();

    let mut plain = start_server(model, false);
    let mut traced = start_server(model, true);

    // Correctness gate: both variants produce identical logits.
    let ccfg = ClientConfig {
        model: "tiny".into(),
        q1_bits: 16,
        batch: refs.len(),
        ..ClientConfig::default()
    };
    let run_p = run_client(plain.dial.connect().expect("connect"), &ccfg, model, &refs)
        .expect("plain reference run");
    let run_t = run_client(traced.dial.connect().expect("connect"), &ccfg, model, &refs)
        .expect("traced reference run");
    assert_eq!(run_p.logits, run_t.logits, "telemetry changed the inference result");

    // Live scraper against the traced server's admin endpoint for the
    // whole measurement — the realistic worst case for the online path.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = traced.admin.map(|addr| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::SeqCst) {
                if aq2pnn_transport::http_get(addr, "/metrics", Duration::from_secs(2)).is_ok() {
                    scrapes += 1;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            scrapes
        })
    });

    let mut plain_ns = f64::INFINITY;
    let mut traced_ns = f64::INFINITY;
    for _ in 0..trials {
        plain_ns = plain_ns.min(client_online_ns(&plain.dial, model, &refs));
        traced_ns = traced_ns.min(client_online_ns(&traced.dial, model, &refs));
    }

    stop.store(true, Ordering::SeqCst);
    if let Some(h) = scraper {
        let scrapes = h.join().expect("scraper thread");
        assert!(scrapes > 0, "admin scraper never completed a scrape");
    }
    let _ = plain.server.drain();
    let _ = traced.server.drain();
    if let Some(dir) = traced.flightrec_dir.take() {
        let _ = std::fs::remove_dir_all(dir);
    }

    CaseResult {
        case: "server_online".to_string(),
        plain_ns,
        traced_ns,
        overhead_pct: (traced_ns / plain_ns - 1.0) * 100.0,
    }
}

struct CaseResult {
    case: String,
    plain_ns: f64,
    traced_ns: f64,
    overhead_pct: f64,
}

fn main() -> ExitCode {
    let threshold = env_f64("OBS_OVERHEAD_MAX_PCT", 3.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let trials = env_f64("OBS_OVERHEAD_TRIALS", 21.0).max(1.0) as usize;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let iters = env_f64("OBS_OVERHEAD_ITERS", 6.0).max(1.0) as u32;

    // One-thread pinning: remove parallel-engine scheduling jitter from
    // the measurement (the tracing layer under test is thread-agnostic).
    if std::env::var("AQ2PNN_THREADS").is_err() {
        std::env::set_var("AQ2PNN_THREADS", "1");
    }

    let mut results = Vec::new();
    for &(bits, n) in CASES {
        let (s0, s1, expect) = make_shares(bits, n);
        let cfg = ProtocolConfig::paper(bits);
        let case = format!("l{bits}_n{n}");

        // Correctness gate before any timing: both variants must produce
        // the plaintext sign on every element.
        assert_eq!(run_sign(&cfg, &s0, &s1, false), expect, "wrong sign flags (plain): {case}");
        assert_eq!(run_sign(&cfg, &s0, &s1, true), expect, "wrong sign flags (traced): {case}");

        // Wall-clock noise on a blocking two-thread protocol dwarfs the
        // effect under test, so a breach triggers a bounded re-measure:
        // a real regression fails every attempt, a scheduler hiccup
        // doesn't survive three.
        let measure = || {
            let mut plain_ns = f64::INFINITY;
            let mut traced_ns = f64::INFINITY;
            for _ in 0..trials {
                plain_ns = plain_ns.min(time_sign(&cfg, &s0, &s1, false, iters));
                traced_ns = traced_ns.min(time_sign(&cfg, &s0, &s1, true, iters));
            }
            (plain_ns, traced_ns, (traced_ns / plain_ns - 1.0) * 100.0)
        };
        let mut best = measure();
        for _ in 0..2 {
            if best.2 < threshold {
                break;
            }
            println!("obs-overhead {case}: {:+.2}% breaches threshold, re-measuring", best.2);
            let next = measure();
            if next.2 < best.2 {
                best = next;
            }
        }
        let (plain_ns, traced_ns, overhead_pct) = best;
        println!(
            "obs-overhead {case}: plain {:.2} ms, traced {:.2} ms, overhead {overhead_pct:+.2}%",
            plain_ns / 1e6,
            traced_ns / 1e6
        );
        results.push(CaseResult { case, plain_ns, traced_ns, overhead_pct });
    }

    // Server online path, same retry policy: a full client/server session
    // is noisier still, so a breach re-measures against fresh servers.
    {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let server_trials = env_f64("OBS_OVERHEAD_SERVER_TRIALS", 7.0).max(1.0) as usize;
        let (data, model) = demo_model("tiny").expect("demo model");
        let images: Vec<Vec<f32>> = data.test_images().into_iter().take(2).collect();
        let mut best = server_case(&model, &images, server_trials);
        for _ in 0..2 {
            if best.overhead_pct < threshold {
                break;
            }
            println!(
                "obs-overhead {}: {:+.2}% breaches threshold, re-measuring",
                best.case, best.overhead_pct
            );
            let next = server_case(&model, &images, server_trials);
            if next.overhead_pct < best.overhead_pct {
                best = next;
            }
        }
        println!(
            "obs-overhead {}: plain {:.2} ms, traced {:.2} ms, overhead {:+.2}%",
            best.case,
            best.plain_ns / 1e6,
            best.traced_ns / 1e6,
            best.overhead_pct
        );
        results.push(best);
    }

    let path = std::env::var("BENCH_OBS_OVERHEAD_JSON")
        .unwrap_or_else(|_| "BENCH_obs_overhead.json".to_string());
    write_report(&path, &results, threshold).expect("report written");
    println!("wrote {path}");

    let worst = results.iter().map(|r| r.overhead_pct).fold(f64::NEG_INFINITY, f64::max);
    if worst >= threshold {
        eprintln!("obs-overhead: FAIL — worst overhead {worst:+.2}% >= {threshold}% threshold");
        return ExitCode::FAILURE;
    }
    println!("obs-overhead: PASS — worst overhead {worst:+.2}% < {threshold}% threshold");
    ExitCode::SUCCESS
}

/// Hand-rolled serialization — the offline workspace carries no JSON
/// dependency.
fn write_report(path: &str, results: &[CaseResult], threshold: f64) -> std::io::Result<()> {
    let mut out = format!("{{\n  \"threshold_pct\": {threshold},\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"plain_ns\": {:.1}, \"traced_ns\": {:.1}, \
             \"overhead_pct\": {:.3}}}{sep}\n",
            r.case, r.plain_ns, r.traced_ns, r.overhead_pct
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::File::create(path)?.write_all(out.as_bytes())
}
