//! **Sec. 2.2 / 6.1 claim** — garbled-circuit ReLU vs ABReLU.
//!
//! The paper motivates ABReLU by GC's bulk ("ReLU requires 67.9 K wires").
//! Here both sides are *real*: the GC cost comes from actually garbling an
//! ℓ-bit ReLU-over-shares circuit (free-XOR, point-and-permute), and the
//! ABReLU cost is measured live from a two-party execution.

use aq2pnn::abrelu::abrelu;
use aq2pnn::sim::run_pair;
use aq2pnn::ProtocolConfig;
use aq2pnn_bench::header;
use aq2pnn_gc::circuit::relu_on_shares;
use aq2pnn_gc::cost::GcCost;
use aq2pnn_ring::RingTensor;
use aq2pnn_sharing::{AShare, PartyId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn abrelu_bytes_per_elem(bits: u32, n: usize) -> f64 {
    let cfg = ProtocolConfig::paper(bits);
    let ring = cfg.q1();
    let mut rng = StdRng::seed_from_u64(1);
    let vals: Vec<i64> = (0..n as i64).map(|i| i * 7 - 100).collect();
    let t = RingTensor::from_signed(ring, vec![n], &vals).expect("fits");
    let (s0, s1) = AShare::share(&t, &mut rng);
    let (bytes, _) = run_pair(&cfg, move |ctx| {
        let mine = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        let _ = abrelu(ctx, &mine).expect("abrelu runs");
        ctx.ep.stats().total_bytes()
    });
    bytes as f64 / n as f64
}

fn main() {
    header("GC-ReLU vs ABReLU — per-activation cost");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>14} {:>16} {:>8}",
        "bits", "GC wires", "GC ANDs", "GC XORs", "GC bytes/elem", "ABReLU bytes/elem", "ratio"
    );
    for bits in [8u32, 16, 24, 32] {
        let circ = relu_on_shares(bits);
        let gc = GcCost::of(&circ);
        let ab = abrelu_bytes_per_elem(bits, 256);
        println!(
            "{bits:<6} {:>9} {:>9} {:>9} {:>14} {:>16.1} {:>8.1}",
            gc.wires,
            gc.and_gates,
            gc.xor_gates,
            gc.total_bytes(),
            ab,
            gc.total_bytes() as f64 / ab
        );
    }
    println!(
        "\npaper context: HAAC-style GC ReLU needs tens of thousands of \
         wires and kilobytes per activation; ABReLU stays at tens of bytes \
         — the 'lightweight rounds over bulky circuits' trade the paper \
         exploits (Sec. 2.2)."
    );
}
