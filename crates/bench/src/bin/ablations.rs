//! **Ablations** — the design choices DESIGN.md calls out, measured live:
//!
//! 1. local vs exact share extension/truncation (end-to-end error rate);
//! 2. revealed-sign vs masked-MUX ABReLU (communication cost of closing
//!    the sign leak);
//! 3. single-round vs lazy (quadrant-gated) OT scheduling;
//! 4. headroom sweep substantiating the paper's "+4 bits" rule.

use aq2pnn::sim::run_two_party;
use aq2pnn::{PipelineMode, ProtocolConfig, ReluMode, ReluRounds};
use aq2pnn_bench::{header, train_tiny};
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_nn::zoo;
use aq2pnn_ring::{extend, Ring};

fn main() {
    let m = train_tiny(&zoo::tiny_cnn(4), 4, 91);
    let n_eval = 16;

    header("Ablation 1 — pipeline structure and share conversions (q1=12)");
    let narrow = {
        let mut c = ProtocolConfig::paper(12);
        c.pipeline = PipelineMode::NarrowActivations;
        c
    };
    for (label, cfg) in [
        ("stay-wide + exact conversions", ProtocolConfig::exact(12)),
        ("stay-wide + local conversions", ProtocolConfig::paper(12)),
        ("narrow-activations (Fig. 8 literal)", narrow),
    ] {
        let mut agree = 0;
        for s in m.data.test().iter().take(n_eval) {
            let run = run_two_party(&m.quant, &cfg, &s.image, 0).expect("2pc runs");
            let plain = m.quant.forward(&s.image).expect("plaintext");
            if argmax_i64(&run.logits) == argmax_i64(&plain) {
                agree += 1;
            }
        }
        println!("{label:<32} argmax agreement {agree}/{n_eval}");
    }

    header("Ablation 2 — revealed-sign vs masked-MUX ABReLU");
    for mode in [ReluMode::RevealedSign, ReluMode::MaskedMux] {
        let mut cfg = ProtocolConfig::paper(16);
        cfg.relu_mode = mode;
        let run = run_two_party(&m.quant, &cfg, &m.data.test()[0].image, 0).expect("runs");
        println!(
            "{mode:?}: {:>8} B online, {} msgs   (masked hides the sign \
             pattern from party 0 at the cost of one width-ℓ OT per \
             activation)",
            run.user_stats.online_total_bytes() + run.provider_stats.online_total_bytes(),
            run.user_stats.messages_sent + run.provider_stats.messages_sent,
        );
    }

    header("Ablation 3 — single-round vs lazy (quadrant-gated) OT");
    for rounds in [ReluRounds::Single, ReluRounds::Lazy] {
        let mut cfg = ProtocolConfig::paper(16);
        cfg.relu_rounds = rounds;
        let run = run_two_party(&m.quant, &cfg, &m.data.test()[0].image, 0).expect("runs");
        println!(
            "{rounds:?}: {:>8} B online, {} msgs",
            run.user_stats.online_total_bytes() + run.provider_stats.online_total_bytes(),
            run.user_stats.messages_sent + run.provider_stats.messages_sent,
        );
    }

    header("Ablation 4 — carrier headroom and the accuracy cliff (Sec. 5.1)");
    println!("{:<10} {:>16}", "carrier", "accuracy(%)");
    for q1 in [16u32, 12, 10, 9, 8, 7, 6] {
        let acc = 100.0 * m.quant.accuracy_ring(m.data.test(), q1, q1 + 16);
        println!("{q1:<10} {acc:>16.2}");
    }
    println!(
        "\ninterpretation: in the stay-wide structure the cliff is \
         deterministic — it appears exactly when the carrier can no longer \
         hold the INT8 value range (≤7 bits here; ≤12 bits for the paper's \
         12-bit models). The narrow-activation ablation above shows the \
         alternative failure mode the paper's '+4 bits' statistical \
         analysis guards against: local share extension at p ≈ |x|/2^ℓ \
         per element (|x|=100, ℓ=12 → p = {:.4}).",
        extend::failure_probability(Ring::new(12), 100)
    );
}
