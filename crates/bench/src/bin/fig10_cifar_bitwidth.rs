//! **Figure 10** — CIFAR10 accuracy vs ABReLU bit-width (ResNet18 and
//! VGG16 in the paper; in-repo trained residual and feed-forward models
//! here, per the DESIGN.md dataset substitution). The mechanism — graceful
//! degradation down to the headroom limit, then collapse — is measured
//! live through the ciphertext-pipeline simulation.

use aq2pnn_bench::{header, tiny_equivalent_bits, train_tiny};
use aq2pnn_nn::zoo;

fn main() {
    header("Figure 10 — accuracy (%) vs bit-width, CIFAR-scale models");
    let bits = [32u32, 24, 20, 16, 14, 13, 12, 11, 10];

    for (label, spec, seed) in [
        ("resnet-style (tiny-resnet)", zoo::tiny_resnet(4), 61u64),
        ("vgg-style (tiny-cnn)", zoo::tiny_cnn(4), 62),
    ] {
        let mut m = train_tiny(&spec, 4, seed);
        let float = 100.0 * m.net.accuracy(m.data.test());
        let int8 = 100.0 * m.quant.accuracy(m.data.test());
        println!("\n{label}: float32 {float:.2}%, int8-plaintext {int8:.2}%");
        println!("{:<10} {:>12} {:>14}", "bits", "tiny-carrier", "accuracy(%)");
        for &b in &bits {
            let q1 = tiny_equivalent_bits(b);
            let acc = 100.0 * m.quant.accuracy_ring(m.data.test(), q1, q1 + 16);
            println!("{b:<10} {q1:>12} {acc:>14.2}");
        }
    }

    println!(
        "\npaper anchors (Fig. 10, CIFAR10): accuracy flat to 16 bits \
         (ResNet18 ≈93%, VGG16 ≈92%), sweet spot 14–16 bits, collapse \
         below. The measured curves reproduce that shape: flat to the \
         +4-headroom point, cliff once carrier headroom is exhausted."
    );
}
