fn main() {
    for (spec, paper) in [
        (aq2pnn_nn::zoo::resnet50_imagenet(), 1120.0),
        (aq2pnn_nn::zoo::vgg16_imagenet(), 1412.0),
        (aq2pnn_nn::zoo::resnet18_imagenet(), 246.0),
        (aq2pnn_nn::zoo::lenet5(), 0.95),
        (aq2pnn_nn::zoo::vgg16_cifar(), 28.87),
    ] {
        let cfg = aq2pnn::ProtocolConfig::paper(16);
        let p = aq2pnn::instq::compile_spec(&spec, &cfg).unwrap();
        println!(
            "{:<22} ours {:>9.2} MiB (online)   paper {:>8.2} MiB   ratio {:.2}",
            spec.name,
            p.online_total_mib(),
            paper,
            p.online_total_mib() / paper
        );
        for prefix in ["conv", "fc", "abrelu", "maxpool", "output"] {
            let b = p.bytes_for_phase_prefix(prefix) as f64 / (1024.0 * 1024.0);
            if b > 0.005 {
                println!("    {prefix:<9} {b:>9.2} MiB");
            }
        }
    }
}
