//! **Table 2** — inference accuracy of the proposed quantization.
//!
//! Paper columns: float32 baseline vs previous-works quantization vs
//! AQ2PNN 16-bit, across MNIST/CIFAR10/ImageNet models.
//!
//! Measured here (dataset substitution per DESIGN.md): small models
//! *trained in-repo* on synthetic datasets, evaluated as (a) float32,
//! (b) a previous-works-style flow (wide fixed carrier, coarse scaling),
//! (c) the AQ2PNN adaptive flow at the recommended headroom. ImageNet-
//! scale rows are quoted from the paper (`reported`).

use aq2pnn_baselines::reported;
use aq2pnn_bench::{header, train_lenet, train_tiny};
use aq2pnn_nn::zoo;

fn main() {
    header("Table 2 — quantized model accuracy (%)");
    println!(
        "{:<22} {:>9} {:>15} {:>15}",
        "model", "float32", "prev-works(2PC)", "AQ2PNN(adaptive)"
    );

    // Measured rows: in-repo trained models on synthetic data.
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    {
        let mut m = train_lenet(3, 11);
        let float = 100.0 * m.net.accuracy(m.data.test());
        // Previous-works style: fixed wide ring; accuracy limited only by
        // int8 quantization (and coarse scaling) — 32-bit carrier.
        let prev = 100.0 * m.quant.accuracy_ring(m.data.test(), 32, 48);
        // AQ2PNN adaptive: value bits + 4 headroom (12-bit carrier).
        let aq = 100.0 * m.quant.accuracy_ring(m.data.test(), 12, 28);
        rows.push(("lenet5-synthetic".into(), float, prev, aq));
    }
    for (label, spec, seed) in [
        ("tiny-cnn-synthetic", zoo::tiny_cnn(4), 21u64),
        ("tiny-resnet-synthetic", zoo::tiny_resnet(4), 31),
    ] {
        let mut m = train_tiny(&spec, 4, seed);
        let float = 100.0 * m.net.accuracy(m.data.test());
        let prev = 100.0 * m.quant.accuracy_ring(m.data.test(), 32, 48);
        let aq = 100.0 * m.quant.accuracy_ring(m.data.test(), 12, 28);
        rows.push((label.into(), float, prev, aq));
    }
    for (label, f, p, a) in &rows {
        println!("{label:<22} {f:>9.2} {p:>15.2} {a:>15.2}  [measured]");
    }

    // Reported rows at the paper's scale.
    for (wl, float, prev, aq) in reported::table2_accuracy() {
        println!("{wl:<22} {float:>9.2} {prev:>15.2} {aq:>15.2}  [reported]");
    }

    println!(
        "\nshape check: adaptive quantization costs ≤~1% accuracy vs float \
         on every measured model (paper: ~1% at 16-bit)."
    );
}
