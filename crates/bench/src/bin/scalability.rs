//! **Sec. 6.4** — scalability with model depth and input size.
//!
//! Two paper observations: (1) AlexNet → VGG16 at CIFAR10 (2.6× more
//! layers) costs ~17× throughput and ~24× communication; (2) scaling the
//! *input image* ~49× (32² → 224²) grows communication ~49× but hurts
//! throughput far less, because the handshake count stays constant while
//! transfers stream.

use aq2pnn::instq::compile_spec;
use aq2pnn::ProtocolConfig;
use aq2pnn_accel::hw::HwConfig;
use aq2pnn_accel::perf::estimate;
use aq2pnn_bench::header;
use aq2pnn_nn::spec::TensorShape;
use aq2pnn_nn::zoo;

fn main() {
    let hw = HwConfig::zcu104();
    let cfg = ProtocolConfig::paper(16);
    let run = |spec: &aq2pnn_nn::spec::ModelSpec| {
        let p = compile_spec(spec, &cfg).expect("compiles");
        let r = estimate(&p, &hw);
        (r.fps, r.comm_mib, p.online_messages())
    };

    header("Sec. 6.4 — depth scaling (CIFAR10 geometry)");
    let (a_fps, a_mib, a_msg) = run(&zoo::alexnet_cifar());
    let (v_fps, v_mib, v_msg) = run(&zoo::vgg16_cifar());
    println!("AlexNet : {a_fps:>8.3} fps, {a_mib:>8.2} MiB, {a_msg} msgs");
    println!("VGG16   : {v_fps:>8.3} fps, {v_mib:>8.2} MiB, {v_msg} msgs");
    println!(
        "depth ratio effects: throughput ÷{:.1} (paper ÷17.3), comm ×{:.1} (paper ×24)",
        a_fps / v_fps,
        v_mib / a_mib
    );

    header("Sec. 6.4 — input-size scaling (same architecture)");
    let small = zoo::alexnet(TensorShape::Chw(3, 32, 32), 10);
    let big = zoo::alexnet(TensorShape::Chw(3, 224, 224), 10);
    let (s_fps, s_mib, s_msg) = run(&small);
    let (b_fps, b_mib, b_msg) = run(&big);
    let px = (224.0f64 * 224.0) / (32.0 * 32.0);
    println!("32×32   : {s_fps:>8.3} fps, {s_mib:>8.2} MiB, {s_msg} msgs");
    println!("224×224 : {b_fps:>8.3} fps, {b_mib:>8.2} MiB, {b_msg} msgs");
    println!(
        "input ×{px:.0} pixels: comm ×{:.1} (paper ~×49), throughput ÷{:.1} \
         (paper ÷9.26), messages ×{:.2} (paper: handshake count constant)",
        b_mib / s_mib,
        s_fps / b_fps,
        b_msg as f64 / s_msg as f64
    );
}
