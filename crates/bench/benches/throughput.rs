//! Batched-service throughput: images/sec and online-pass latency of the
//! prepared LeNet5 pipeline as the batch size `B` grows, with the offline
//! dealer inline (cold) vs. backgrounded and pre-warmed (warm).
//!
//! The harness mirrors `sim::run_two_party_service` but times every
//! online pass individually on the user side. Passes are separated by a
//! think-time gap (a request-arrival interval, not counted) — the regime
//! the background dealer exists for: with gaps between requests, triple
//! generation hides in the idle time instead of sitting on the online
//! critical path, so the *cold* configuration pays the offline Z-GEMMs
//! inside each timed pass and the *warm* one does not.
//!
//! Wall-clock on the in-process duplex measures pure compute; the
//! batching win proper — one message schedule per layer serving all `B`
//! images — is a round-trip amortization, so each pass's measured byte
//! and message counts are additionally projected through the repo's
//! [`NetworkModel`] (`projected = wall + transfer_seconds(bytes/2,
//! msgs/2)`, the half-duplex convention of `aq2pnn-accel`) on the paper's
//! 1 Gbps/50 µs LAN and on a 200 Mbps/40 ms-RTT WAN.
//!
//! Per-phase [`ChannelStats`] snapshots taken after preparation and after
//! the timed passes prove the dealer claim structurally: **no
//! `offline`-prefixed phase gains a byte during the timed passes** — the
//! bench asserts it, so a regression fails loudly.
//!
//! A second sweep measures the **multi-tenant server** (`aq2pnn-server`
//! over the in-process [`mem_acceptor`]): 1/4/16 concurrent clients each
//! running a full admission → session → inference round trip, plus an
//! overload burst against a one-slot server that measures how fast a
//! `Shed` verdict reaches the extra dialers. Rows land in the same JSON
//! under `server_results` with per-client completion p50/p99, aggregate
//! images/sec, shed counts and shed-reply latency, and the drain report.
//! Each server config additionally emits `server.slo` rows — p50/p99 per
//! latency class (admission / online / e2e) read from the server's live
//! `server.slo.*_ms` histograms, the inside-the-server view of what the
//! per-client timings measure from the outside.
//!
//! Emits `BENCH_service.json` (override with `BENCH_SERVICE_JSON`):
//! per-config measured/LAN/WAN images-per-sec, pass and per-image p50/p99,
//! online bytes and messages per pass, dealer hit/miss counters, and the
//! `b8_vs_sequential_speedup` acceptance ratio (warm batch-8 over warm
//! one-at-a-time service rate on the WAN profile, where per-message
//! latency dominates). Knobs: `THROUGHPUT_BATCHES` (comma-separated `B`
//! list, default `1,2,4,8,16`), `THROUGHPUT_TRIALS` (timed passes per
//! configuration, default 10), `SERVER_CLIENTS` (comma-separated client
//! counts, default `1,4,16`), `SERVER_CLIENT_IMAGES` (images per client,
//! default 2).

use aq2pnn::dealer::{DealerConfig, ExhaustionPolicy};
use aq2pnn::engine::BatchInput;
use aq2pnn::prepared::PreparedModel;
use aq2pnn::substrate::obs::MetricsRegistry;
use aq2pnn::{IdealOracle, PartyContext, ProtocolConfig};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{duplex, ChannelStats, NetworkModel};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Untimed passes before measurement starts (first-touch allocations,
/// think-time calibration).
const WARMUP_PASSES: usize = 1;

/// A wide-area profile where per-message latency dominates: 200 Mbps,
/// 40 ms RTT (20 ms one-way) — the regime batching is for.
fn wan() -> NetworkModel {
    NetworkModel { bandwidth_bps: 200e6, latency_s: 20e-3, per_message_overhead_bytes: 66 }
}

/// One measured configuration: `trials` timed batched passes at batch
/// size `batch`, dealer inline (`warm == false`) or backgrounded and
/// pre-warmed (`warm == true`).
struct Measurement {
    batch: usize,
    warm: bool,
    /// Wall time of each timed pass, user side.
    per_pass_ns: Vec<u64>,
    /// Wire bytes (both directions, user endpoint) of one online pass.
    online_bytes_per_pass: u64,
    /// Messages (both directions, user endpoint) of one online pass.
    online_msgs_per_pass: u64,
    /// `offline`-phase bytes after prepare and after all passes — equal
    /// iff the online passes carried zero offline traffic.
    offline_bytes_after_prepare: u64,
    offline_bytes_final: u64,
    /// User-side dealer counters over the whole run (zeros when cold).
    dealer_hits: u64,
    dealer_misses: u64,
}

fn offline_bytes(stats: &ChannelStats) -> u64 {
    stats
        .phases
        .iter()
        .filter(|(k, _)| k.starts_with("offline"))
        .map(|(_, p)| p.total_bytes())
        .sum()
}

/// Runs one service configuration end to end and times the user side.
fn run_config(
    model: &QuantModel,
    cfg: &ProtocolConfig,
    images: &[Vec<f32>],
    batch: usize,
    warm: bool,
    trials: usize,
) -> Measurement {
    let passes = WARMUP_PASSES + trials;
    let dealer_cfg =
        DealerConfig { depth: (2 * batch).max(16), policy: ExhaustionPolicy::GenerateInline };
    let (e0, e1) = duplex();
    let oracle = Arc::new(IdealOracle::new(cfg.setup_seed ^ 0x0eac1e));
    let (cfg1, o1, m1) = (cfg.clone(), Arc::clone(&oracle), model.clone());
    let provider = std::thread::spawn(move || {
        let mut ctx = PartyContext::new(PartyId::ModelProvider, e1, cfg1, Some(o1));
        let mut prepared = PreparedModel::prepare(&mut ctx, &m1).expect("provider prepare");
        let _pool = warm.then(|| {
            let pool = prepared.spawn_dealer(&ctx, dealer_cfg);
            assert!(pool.wait_warm(Duration::from_secs(60)), "provider dealer never warmed");
            pool
        });
        for _ in 0..passes {
            prepared
                .run_batch(&mut ctx, BatchInput::Provider { batch })
                .expect("provider online pass");
        }
    });

    let mut ctx = PartyContext::new(PartyId::User, e0, cfg.clone(), Some(oracle));
    let metrics = MetricsRegistry::new();
    ctx.set_obs(aq2pnn::substrate::obs::Tracer::default(), metrics.clone());
    let mut prepared = PreparedModel::prepare(&mut ctx, model).expect("user prepare");
    let _pool = warm.then(|| {
        let pool = prepared.spawn_dealer(&ctx, dealer_cfg);
        assert!(pool.wait_warm(Duration::from_secs(60)), "user dealer never warmed");
        pool
    });
    let after_prepare = ctx.ep.stats();
    let refs: Vec<&[f32]> = (0..batch).map(|i| images[i % images.len()].as_slice()).collect();
    let mut per_pass_ns = Vec::with_capacity(trials);
    let (mut pass_bytes, mut pass_msgs) = (0u64, 0u64);
    // Request-arrival gap between passes; calibrated to the warmup pass
    // so the dealer gets one pass-worth of idle time to refill in.
    let mut think = Duration::ZERO;
    for i in 0..passes {
        let before = ctx.ep.totals();
        let t0 = Instant::now();
        prepared.run_batch(&mut ctx, BatchInput::User(&refs)).expect("user online pass");
        let dt = t0.elapsed();
        let delta = ctx.ep.totals().since(&before);
        pass_bytes = delta.total_bytes();
        pass_msgs = delta.messages_sent + delta.messages_received;
        if i >= WARMUP_PASSES {
            per_pass_ns.push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        } else {
            think = dt.min(Duration::from_millis(500));
        }
        std::thread::sleep(think);
    }
    provider.join().expect("provider thread");
    let final_stats = ctx.ep.stats();
    let snap = metrics.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    Measurement {
        batch,
        warm,
        per_pass_ns,
        online_bytes_per_pass: pass_bytes,
        online_msgs_per_pass: pass_msgs,
        offline_bytes_after_prepare: offline_bytes(&after_prepare),
        offline_bytes_final: offline_bytes(&final_stats),
        dealer_hits: counter("dealer.hits"),
        dealer_misses: counter("dealer.misses"),
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl Measurement {
    /// Mean pass seconds with a network's transfer cost added (the
    /// `aq2pnn-accel` half-duplex convention: one direction's bytes and
    /// messages ride the link serially).
    fn pass_seconds(&self, net: &NetworkModel) -> f64 {
        let total_ns: u64 = self.per_pass_ns.iter().sum();
        let wall = total_ns as f64 / 1e9 / self.per_pass_ns.len() as f64;
        wall + net.transfer_seconds(self.online_bytes_per_pass / 2, self.online_msgs_per_pass / 2)
    }

    fn images_per_sec(&self, net: &NetworkModel) -> f64 {
        self.batch as f64 / self.pass_seconds(net)
    }

    fn json_row(&self) -> String {
        let mut sorted = self.per_pass_ns.clone();
        sorted.sort_unstable();
        let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "    {{\"batch\": {}, \"dealer\": \"{}\", \"trials\": {}, \
             \"measured_images_per_sec\": {:.2}, \
             \"lan_images_per_sec\": {:.2}, \"wan_images_per_sec\": {:.2}, \
             \"pass_p50_ms\": {:.3}, \"pass_p99_ms\": {:.3}, \
             \"per_image_p50_ms\": {:.3}, \"per_image_p99_ms\": {:.3}, \
             \"online_bytes_per_pass\": {}, \"online_msgs_per_pass\": {}, \
             \"dealer_hits\": {}, \"dealer_misses\": {}, \
             \"offline_bytes_after_prepare\": {}, \
             \"offline_bytes_during_passes\": {}}}",
            self.batch,
            if self.warm { "warm" } else { "cold" },
            self.per_pass_ns.len(),
            self.images_per_sec(&NetworkModel::ideal()),
            self.images_per_sec(&NetworkModel::paper_lan()),
            self.images_per_sec(&wan()),
            ms(p50),
            ms(p99),
            ms(p50) / self.batch as f64,
            ms(p99) / self.batch as f64,
            self.online_bytes_per_pass,
            self.online_msgs_per_pass,
            self.dealer_hits,
            self.dealer_misses,
            self.offline_bytes_after_prepare,
            self.offline_bytes_final - self.offline_bytes_after_prepare,
        )
    }
}

/// One multi-client server configuration, measured end to end.
struct ServerMeasurement {
    clients: usize,
    images_per_client: usize,
    /// Wall time from first dial to last completion.
    wall_ns: u64,
    /// Per-client dial-to-logits time, completed clients only.
    per_client_ns: Vec<u64>,
    /// Dial-to-`Shed`-verdict time of each shed client (overload row).
    shed_reply_ns: Vec<u64>,
    counters: aq2pnn_server::ServerCounters,
    drain: aq2pnn_server::DrainReport,
    /// `(class_label, p50_ms, p99_ms, samples)` from the server's live
    /// `server.slo.*_ms` histograms (admission / online / e2e).
    slo: Vec<(String, f64, f64, u64)>,
}

/// Runs `clients` concurrent full client sessions against one shared
/// server over the in-process acceptor. With `overload` set, the server
/// gets a single serve slot and no queue, one occupant client pins it,
/// and the remaining dialers measure the shed path instead.
fn run_server_config(
    model: &QuantModel,
    images: &[Vec<f32>],
    clients: usize,
    images_per_client: usize,
    overload: bool,
) -> ServerMeasurement {
    use aq2pnn_server::{
        mem_acceptor, run_client, ClientConfig, ClientError, InferenceServer, ModelRegistry,
        ServerConfig, ServerObs,
    };
    let mut scfg = ServerConfig::default();
    if overload {
        scfg.max_sessions = 1;
        scfg.queue_depth = 0;
    } else {
        scfg.max_sessions = clients;
        scfg.queue_depth = clients;
    }
    scfg.dealer = Some(DealerConfig {
        depth: (2 * images_per_client).max(16),
        policy: ExhaustionPolicy::GenerateInline,
    });
    // Live SLO tracking with a never-violated budget: the rows report the
    // latency distribution, not a pass/fail verdict.
    scfg.slo_ms = Some(600_000);
    let mut registry = ModelRegistry::new();
    registry.insert("lenet5", model.clone());
    let (acc, dial) = mem_acceptor();
    let metrics = MetricsRegistry::new();
    let obs = ServerObs { metrics: metrics.clone(), ..ServerObs::default() };
    let mut server = InferenceServer::start(Box::new(acc), scfg, registry, obs);

    let ccfg = ClientConfig {
        model: "lenet5".into(),
        q1_bits: 16,
        batch: images_per_client,
        ..ClientConfig::default()
    };
    // One full dial-to-logits client session on its own thread; `n_images`
    // at the configured batch size, timed from the dial.
    let spawn_client = |n_images: usize, batch: usize| {
        let (d, m) = (dial.clone(), model.clone());
        let c = ClientConfig { batch, ..ccfg.clone() };
        let imgs = images.to_vec();
        std::thread::spawn(move || {
            let refs: Vec<&[f32]> =
                (0..n_images).map(|i| imgs[i % imgs.len()].as_slice()).collect();
            let t0 = Instant::now();
            let res = d
                .connect()
                .map_err(ClientError::from)
                .and_then(|link| run_client(link, &c, &m, &refs))
                .map(|run| run.logits.len());
            (u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX), res)
        })
    };

    let t_all = Instant::now();
    let mut per_client_ns = Vec::new();
    let mut shed_reply_ns = Vec::new();
    if overload {
        // Eight one-image passes keep the single slot busy for far longer
        // than the burst needs: sheds are answered at accept time.
        let occupant = spawn_client(8, 1);
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.counters().active == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let burst: Vec<_> = (0..clients).map(|_| spawn_client(1, 1)).collect();
        for h in burst {
            let (ns, res) = h.join().expect("burst client thread");
            match res {
                Err(ClientError::Shed) => shed_reply_ns.push(ns),
                other => panic!("overload burst expected Shed, got {other:?}"),
            }
        }
        let (ns, res) = occupant.join().expect("occupant thread");
        assert_eq!(res.expect("occupant session"), 8, "occupant got all its logits");
        per_client_ns.push(ns);
    } else {
        let handles: Vec<_> =
            (0..clients).map(|_| spawn_client(images_per_client, images_per_client)).collect();
        for h in handles {
            let (ns, res) = h.join().expect("client thread");
            let n = res.expect("client session");
            assert_eq!(n, images_per_client, "client got all its logits");
            per_client_ns.push(ns);
        }
    }
    let wall_ns = u64::try_from(t_all.elapsed().as_nanos()).unwrap_or(u64::MAX);
    // Drain first: it joins every session worker, so the counters read
    // below are final (a client returns slightly before its server-side
    // worker finishes billing the session).
    let drain = server.drain();
    let counters = server.counters();
    let snap = metrics.snapshot();
    let slo = aq2pnn::substrate::obs::SloClass::ALL
        .iter()
        .filter_map(|class| {
            let h = snap.histograms.get(class.hist_name())?;
            (h.count > 0).then(|| {
                (
                    class.label().to_string(),
                    aq2pnn::substrate::obs::quantile(h, 0.50),
                    aq2pnn::substrate::obs::quantile(h, 0.99),
                    h.count,
                )
            })
        })
        .collect();
    ServerMeasurement {
        clients,
        images_per_client,
        wall_ns,
        per_client_ns,
        shed_reply_ns,
        counters,
        drain,
        slo,
    }
}

impl ServerMeasurement {
    fn config_name(&self) -> String {
        if self.shed_reply_ns.is_empty() {
            format!("c{}", self.clients)
        } else {
            "overload".to_string()
        }
    }

    /// One `server.slo` row per latency class with recorded samples —
    /// the live-histogram view of what `client_p50/p99` measure from the
    /// outside.
    fn slo_rows(&self) -> Vec<String> {
        let name = self.config_name();
        self.slo
            .iter()
            .map(|(class, p50, p99, samples)| {
                format!(
                    "    {{\"row\": \"server.slo\", \"config\": \"server_{name}\", \
                     \"class\": \"{class}\", \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \
                     \"samples\": {samples}}}"
                )
            })
            .collect()
    }

    fn json_row(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let pcts = |v: &[u64]| {
            let mut s = v.to_vec();
            s.sort_unstable();
            if s.is_empty() {
                (0.0, 0.0)
            } else {
                (ms(percentile(&s, 0.50)), ms(percentile(&s, 0.99)))
            }
        };
        let (p50, p99) = pcts(&self.per_client_ns);
        let (shed_p50, shed_p99) = pcts(&self.shed_reply_ns);
        let total_images = (self.per_client_ns.len() * self.images_per_client) as f64;
        let images_per_sec = total_images / (self.wall_ns as f64 / 1e9);
        format!(
            "    {{\"row\": \"server_{}\", \"clients\": {}, \"images_per_client\": {}, \
             \"images_per_sec\": {:.2}, \
             \"client_p50_ms\": {:.3}, \"client_p99_ms\": {:.3}, \
             \"shed\": {}, \"shed_reply_p50_ms\": {:.3}, \"shed_reply_p99_ms\": {:.3}, \
             \"admitted\": {}, \"completed\": {}, \
             \"drain_clean\": {}, \"drain_ms\": {}}}",
            self.config_name(),
            self.clients,
            self.images_per_client,
            images_per_sec,
            p50,
            p99,
            self.counters.shed,
            shed_p50,
            shed_p99,
            self.counters.admitted,
            self.counters.completed,
            self.drain.clean,
            self.drain.drain_ms,
        )
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn batch_list() -> Vec<usize> {
    std::env::var("THROUGHPUT_BATCHES")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&b| b >= 1).collect())
        .ok()
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16])
}

fn main() {
    let trials = env_usize("THROUGHPUT_TRIALS", 10);
    let batches = batch_list();
    eprintln!("throughput: LeNet5 paper(16), B = {batches:?}, {trials} trials per config");

    let data = SyntheticVision::mnist_like(2024);
    let mut net = FloatNet::init(&zoo::lenet5(), 9).expect("valid spec");
    net.train_epochs(&data, 1, 16, 0.05);
    let model = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())
        .expect("quantization succeeds");
    let cfg = ProtocolConfig::paper(16);
    let max_b = batches.iter().copied().max().unwrap_or(1);
    let images: Vec<Vec<f32>> =
        data.test().iter().cycle().take(max_b).map(|s| s.image.clone()).collect();

    let mut rows = Vec::new();
    let mut warm_runs: Vec<Measurement> = Vec::new();
    for &b in &batches {
        for warm in [false, true] {
            let m = run_config(&model, &cfg, &images, b, warm, trials);
            // The structural claim behind "warm p50 excludes offline
            // work": the online passes moved zero offline-phase bytes.
            assert_eq!(
                m.offline_bytes_final,
                m.offline_bytes_after_prepare,
                "B = {b} {}: online passes carried offline-phase traffic",
                if warm { "warm" } else { "cold" }
            );
            eprintln!(
                "  B = {b:2} {}: {:7.2} img/s measured, {:7.2} LAN, {:6.2} WAN \
                 ({} msgs/pass, dealer {}/{} hit/miss)",
                if warm { "warm" } else { "cold" },
                m.images_per_sec(&NetworkModel::ideal()),
                m.images_per_sec(&NetworkModel::paper_lan()),
                m.images_per_sec(&wan()),
                m.online_msgs_per_pass,
                m.dealer_hits,
                m.dealer_misses,
            );
            rows.push(m.json_row());
            if warm {
                warm_runs.push(m);
            }
        }
    }

    // Acceptance ratio: warm batch-8 service rate over warm sequential
    // (B = 1) on the WAN profile, where the per-message latency that
    // batching amortizes dominates the pass.
    let rate_at = |b: usize| warm_runs.iter().find(|m| m.batch == b);
    let speedup = match (rate_at(8), rate_at(1)) {
        (Some(m8), Some(m1)) => Some(m8.images_per_sec(&wan()) / m1.images_per_sec(&wan())),
        _ => None,
    };
    if let Some(s) = speedup {
        eprintln!("  warm B=8 vs sequential (WAN): {s:.2}x images/sec");
    }

    // Multi-tenant server sweep: concurrent clients over the in-process
    // acceptor, then an overload burst against a one-slot server.
    let client_counts: Vec<usize> = std::env::var("SERVER_CLIENTS")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&c| c >= 1).collect())
        .ok()
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 16]);
    let images_per_client = env_usize("SERVER_CLIENT_IMAGES", 2);
    let mut server_rows = Vec::new();
    for &c in &client_counts {
        let m = run_server_config(&model, &images, c, images_per_client, false);
        eprintln!(
            "  server {c:2} client(s): {:7.2} img/s aggregate, completed {}, drain {}",
            (m.per_client_ns.len() * m.images_per_client) as f64 / (m.wall_ns as f64 / 1e9),
            m.counters.completed,
            if m.drain.clean { "clean" } else { "forced" },
        );
        server_rows.push(m.json_row());
        server_rows.extend(m.slo_rows());
    }
    let m = run_server_config(&model, &images, 4, 1, true);
    eprintln!(
        "  server overload burst: {} shed with typed errors, occupant completed",
        m.counters.shed
    );
    server_rows.push(m.json_row());
    server_rows.extend(m.slo_rows());

    let out = format!(
        "{{\n  \"model\": \"lenet5\",\n  \"config\": \"paper16\",\n  \
         \"networks\": {{\"lan\": \"1 Gbps / 50 us\", \"wan\": \"200 Mbps / 40 ms RTT\"}},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"server_results\": [\n{}\n  ],\n  \
         \"b8_vs_sequential_speedup\": {}\n}}\n",
        rows.join(",\n"),
        server_rows.join(",\n"),
        speedup.map_or_else(|| "null".to_string(), |s| format!("{s:.3}")),
    );
    let path =
        std::env::var("BENCH_SERVICE_JSON").unwrap_or_else(|_| "BENCH_service.json".to_string());
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()))
        .expect("report written");
    println!("wrote {path}");
}
