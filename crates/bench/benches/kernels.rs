//! Criterion benchmarks of the data-plane kernels behind the 2PC hot path,
//! per ISA dispatch level and per ring width: the cache-blocked
//! mask-deferred `ring_matmul` (three calls per conv layer, paper Eq. 1),
//! the wire packers, and the A2BM comparison-code table fill — each run
//! once per [`IsaLevel`] the host supports, against its scalar/generic
//! reference.
//!
//! Every variant asserts bit-identity with the reference before it is
//! timed, so this doubles as a correctness gate. On top of the timings
//! printed per bench, the run emits `BENCH_kernels.json` (in the working
//! directory) with every measurement plus derived `dispatch_speedups`
//! (each ISA's win over the scalar dispatch at the same width), which the
//! `kernel_gate` binary compares against the committed
//! `BENCH_kernels_baseline.json` in CI.

use aq2pnn::abrelu::{fill_sender_codes, fill_sender_codes_reference};
use aq2pnn_ring::{IsaLevel, Ring, RingTensor};
use aq2pnn_sharing::a2b::{group_widths, split_groups_into};
use aq2pnn_sharing::beaver::{ring_matmul, ring_matmul_reference, ring_matmul_with};
use aq2pnn_sharing::kernels::KernelDispatch;
use aq2pnn_transport::{
    pack_bits_reference, pack_bits_with_isa, unpack_bits_reference, unpack_bits_with_isa,
};
use criterion::{all_results, criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::io::Write;

/// GEMM shapes from the paper's workloads, as lowered by im2col
/// (`[m, k] ⊗ [k, n]` = `[oh·ow, in_c·kh·kw] ⊗ [kdim, out_c]`):
/// LeNet-5 conv2 / fc1 on MNIST, and a VGG16 stage-2 conv block on
/// CIFAR — the `256×1152×64` shape the acceptance bar is pinned to.
const GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("lenet5_conv2_100x150x16", 100, 150, 16),
    ("lenet5_fc1_1x400x120", 1, 400, 120),
    ("vgg16_conv_256x1152x64", 256, 1152, 64),
];

/// Ring widths for the per-ℓ sweeps: the paper's adaptive-quantization
/// carriers (12/16/20) plus the u32→u64 accumulator boundary (32). The
/// VGG shape runs the full sweep; the LeNet shapes run at `GEMM_SPOT_L`.
const GEMM_SWEEP_L: &[u32] = &[12, 16, 20, 32];
const GEMM_SPOT_L: u32 = 20;

/// Wire widths exercising every packer path: the specialized group
/// kernels (sub-byte 1/2/4 and the ℓ = 12/20 paper rings) and an awkward
/// bit-straddling generic width (31).
const PACK_BITS: &[u32] = &[1, 2, 4, 12, 20, 31];
const PACK_COUNT: usize = 1 << 14;

/// Code-table fill widths (full single-round pattern) and batch size.
const FILL_L: &[u32] = &[12, 16, 20, 32];
const FILL_ITEMS: usize = 1 << 13;

fn bench_ring_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    for &(name, m, k, n) in GEMM_SHAPES {
        let sweep: &[u32] = if name.starts_with("vgg") { GEMM_SWEEP_L } else { &[GEMM_SPOT_L] };
        for &bits in sweep {
            let ring = Ring::new(bits);
            let a = RingTensor::random(ring, vec![m, k], &mut rng);
            let b = RingTensor::random(ring, vec![k, n], &mut rng);
            let want = ring_matmul_reference(&a, &b).unwrap();
            let case = format!("l{bits}/{name}");
            c.bench_with_input(BenchmarkId::new("matmul/reference", &case), &(), |bch, ()| {
                bch.iter(|| ring_matmul_reference(black_box(&a), black_box(&b)).unwrap());
            });
            // Single thread per ISA: isolates the dispatch win from thread
            // scaling.
            std::env::set_var("AQ2PNN_THREADS", "1");
            for isa in IsaLevel::available() {
                let d = KernelDispatch::for_isa(isa);
                assert_eq!(
                    ring_matmul_with(&d, &a, &b).unwrap(),
                    want,
                    "dispatch disagrees with reference at {case} on {isa}"
                );
                let id = BenchmarkId::new(&format!("matmul/{isa}_1t"), &case);
                c.bench_with_input(id, &(), |bch, ()| {
                    bch.iter(|| ring_matmul_with(&d, black_box(&a), black_box(&b)).unwrap());
                });
            }
            std::env::remove_var("AQ2PNN_THREADS");
            c.bench_with_input(BenchmarkId::new("matmul/active_par", &case), &(), |bch, ()| {
                bch.iter(|| ring_matmul(black_box(&a), black_box(&b)).unwrap());
            });
        }
    }
}

fn bench_packing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    // Single-thread: the per-ISA rows measure the group kernels, not the
    // fan-out.
    std::env::set_var("AQ2PNN_THREADS", "1");
    for &bits in PACK_BITS {
        let ring = Ring::new(bits);
        let elems: Vec<u64> = (0..PACK_COUNT).map(|_| ring.sample(&mut rng)).collect();
        let packed = pack_bits_reference(&elems, bits);
        c.bench_with_input(BenchmarkId::new("pack/reference", bits), &(), |bch, ()| {
            bch.iter(|| pack_bits_reference(black_box(&elems), bits));
        });
        c.bench_with_input(BenchmarkId::new("unpack/reference", bits), &(), |bch, ()| {
            bch.iter(|| unpack_bits_reference(black_box(&packed), bits, PACK_COUNT));
        });
        for isa in IsaLevel::available() {
            assert_eq!(
                pack_bits_with_isa(&elems, bits, isa),
                packed,
                "packer disagrees with reference at {bits} bits on {isa}"
            );
            assert_eq!(
                unpack_bits_with_isa(&packed, bits, PACK_COUNT, isa),
                elems,
                "unpacker disagrees with reference at {bits} bits on {isa}"
            );
            let id = BenchmarkId::new(&format!("pack/{isa}"), bits);
            c.bench_with_input(id, &(), |bch, ()| {
                bch.iter(|| pack_bits_with_isa(black_box(&elems), bits, isa));
            });
            let id = BenchmarkId::new(&format!("unpack/{isa}"), bits);
            c.bench_with_input(id, &(), |bch, ()| {
                bch.iter(|| unpack_bits_with_isa(black_box(&packed), bits, PACK_COUNT, isa));
            });
        }
    }
    std::env::remove_var("AQ2PNN_THREADS");
}

fn bench_fill_codes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    std::env::set_var("AQ2PNN_THREADS", "1");
    for &bits in FILL_L {
        let ring = Ring::new(bits);
        let widths = group_widths(bits);
        let u_cnt = widths.len();
        let vals = RingTensor::random(ring, vec![FILL_ITEMS], &mut rng);
        let mut u_flat = Vec::new();
        split_groups_into(ring, vals.as_slice(), &widths, &mut u_flat);
        let (mut want_msgs, mut want_arity) = (Vec::new(), Vec::new());
        fill_sender_codes_reference(
            &u_flat,
            u_cnt,
            &widths,
            0,
            u_cnt,
            None,
            &mut want_msgs,
            &mut want_arity,
        );
        {
            let (mut msgs, mut arity) = (Vec::new(), Vec::new());
            let id = BenchmarkId::new("fill_codes/reference", bits);
            c.bench_with_input(id, &(), |bch, ()| {
                bch.iter(|| {
                    fill_sender_codes_reference(
                        black_box(&u_flat),
                        u_cnt,
                        &widths,
                        0,
                        u_cnt,
                        None,
                        &mut msgs,
                        &mut arity,
                    );
                    msgs.len()
                });
            });
        }
        for isa in IsaLevel::available() {
            let (mut msgs, mut arity) = (Vec::new(), Vec::new());
            fill_sender_codes(&u_flat, u_cnt, &widths, 0, u_cnt, None, isa, &mut msgs, &mut arity);
            assert_eq!(msgs, want_msgs, "code fill disagrees at l{bits} on {isa}");
            assert_eq!(arity, want_arity, "arity disagrees at l{bits} on {isa}");
            let id = BenchmarkId::new(&format!("fill_codes/{isa}"), bits);
            c.bench_with_input(id, &(), |bch, ()| {
                bch.iter(|| {
                    fill_sender_codes(
                        black_box(&u_flat),
                        u_cnt,
                        &widths,
                        0,
                        u_cnt,
                        None,
                        isa,
                        &mut msgs,
                        &mut arity,
                    );
                    msgs.len()
                });
            });
        }
    }
    std::env::remove_var("AQ2PNN_THREADS");
}

criterion_group!(kernels, bench_ring_matmul, bench_packing, bench_fill_codes);

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the measurement registry (plus derived speedups) by hand —
/// the offline workspace carries no JSON dependency. The
/// `dispatch_speedups` rows (`{kernel, l, isa, vs_scalar}`) are the
/// machine-portable quantity the `kernel_gate` binary regresses against
/// the committed baseline.
fn write_report(path: &str) -> std::io::Result<()> {
    let results = all_results();
    let ns = |name: String| results.iter().find(|r| r.name == name).map(|r| r.ns_per_iter);
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_batch\": {}}}{sep}\n",
            json_escape(&r.name),
            r.ns_per_iter,
            r.iters
        ));
    }
    // Blocked-vs-reference speedups, the historical GEMM trajectory.
    out.push_str("  ],\n  \"speedups\": [\n");
    let active = IsaLevel::active();
    let mut lines = Vec::new();
    for &(name, ..) in GEMM_SHAPES {
        let sweep: &[u32] = if name.starts_with("vgg") { GEMM_SWEEP_L } else { &[GEMM_SPOT_L] };
        for &bits in sweep {
            let case = format!("l{bits}/{name}");
            let (reference, single, par) = (
                ns(format!("matmul/reference/{case}")),
                ns(format!("matmul/{active}_1t/{case}")),
                ns(format!("matmul/active_par/{case}")),
            );
            if let (Some(reference), Some(single), Some(par)) = (reference, single, par) {
                lines.push(format!(
                    "    {{\"shape\": \"{name}\", \"l\": {bits}, \
                     \"single_thread_vs_reference\": {:.2}, \
                     \"parallel_vs_reference\": {:.2}}}",
                    reference / single,
                    reference / par
                ));
            }
        }
    }
    out.push_str(&lines.join(",\n"));
    // Per-ISA dispatch rows at each width: the kernel's win over the scalar
    // dispatch kernel (`vs_scalar`) and over the pre-dispatch generic
    // implementation (`vs_reference`). These are the rows the CI gate
    // compares against the committed baseline.
    out.push_str("\n  ],\n  \"dispatch_speedups\": [\n");
    let mut lines = Vec::new();
    let mut push_row =
        |kernel: &str, l: u32, isa: IsaLevel, reference: String, scalar: String, name: String| {
            if let (Some(reference), Some(scalar), Some(fast)) =
                (ns(reference), ns(scalar), ns(name))
            {
                lines.push(format!(
                    "    {{\"kernel\": \"{kernel}\", \"l\": {l}, \"isa\": \"{isa}\", \
                     \"vs_scalar\": {:.3}, \"vs_reference\": {:.3}}}",
                    scalar / fast,
                    reference / fast
                ));
            }
        };
    for isa in IsaLevel::available() {
        for &bits in GEMM_SWEEP_L {
            let case = format!("l{bits}/vgg16_conv_256x1152x64");
            push_row(
                "matmul",
                bits,
                isa,
                format!("matmul/reference/{case}"),
                format!("matmul/scalar_1t/{case}"),
                format!("matmul/{isa}_1t/{case}"),
            );
        }
        for &bits in PACK_BITS {
            push_row(
                "pack",
                bits,
                isa,
                format!("pack/reference/{bits}"),
                format!("pack/scalar/{bits}"),
                format!("pack/{isa}/{bits}"),
            );
            push_row(
                "unpack",
                bits,
                isa,
                format!("unpack/reference/{bits}"),
                format!("unpack/scalar/{bits}"),
                format!("unpack/{isa}/{bits}"),
            );
        }
        for &bits in FILL_L {
            push_row(
                "fill_codes",
                bits,
                isa,
                format!("fill_codes/reference/{bits}"),
                format!("fill_codes/scalar/{bits}"),
                format!("fill_codes/{isa}/{bits}"),
            );
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::File::create(path)?.write_all(out.as_bytes())
}

fn main() {
    kernels();
    let path =
        std::env::var("BENCH_KERNELS_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    write_report(&path).expect("report written");
    println!("wrote {path}");
}
