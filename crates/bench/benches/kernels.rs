//! Criterion benchmarks of the data-plane kernels behind the 2PC hot path:
//! the cache-blocked mask-deferred `ring_matmul` (three calls per conv
//! layer, paper Eq. 1) against the scalar triple-loop reference, and the
//! wire packing fast paths against the generic bit loop.
//!
//! On top of the timings printed per bench, the run emits
//! `BENCH_kernels.json` (in the working directory) with every measurement
//! plus derived single-thread / parallel speedups, so future changes have a
//! recorded perf trajectory to compare against.

use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::{ring_matmul, ring_matmul_reference};
use aq2pnn_transport::{pack_bits, pack_bits_reference, unpack_bits, unpack_bits_reference};
use criterion::{all_results, criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::io::Write;

/// GEMM shapes from the paper's workloads, as lowered by im2col
/// (`[m, k] ⊗ [k, n]` = `[oh·ow, in_c·kh·kw] ⊗ [kdim, out_c]`):
/// LeNet-5 conv2 / fc1 on MNIST, and a VGG16 stage-2 conv block on
/// CIFAR — the `256×1152×64` shape the acceptance bar is pinned to.
const GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("lenet5_conv2_100x150x16", 100, 150, 16),
    ("lenet5_fc1_1x400x120", 1, 400, 120),
    ("vgg16_conv_256x1152x64", 256, 1152, 64),
];

/// Wire widths exercising every packer path: sub-byte (2), whole-byte
/// memcpy paths (8, 16) and an awkward bit-straddling width (31).
const PACK_BITS: &[u32] = &[2, 8, 16, 31];
const PACK_COUNT: usize = 1 << 14;

fn bench_ring_matmul(c: &mut Criterion) {
    let ring = Ring::new(31);
    let mut rng = StdRng::seed_from_u64(42);
    for &(name, m, k, n) in GEMM_SHAPES {
        let a = RingTensor::random(ring, vec![m, k], &mut rng);
        let b = RingTensor::random(ring, vec![k, n], &mut rng);
        assert_eq!(
            ring_matmul(&a, &b).unwrap(),
            ring_matmul_reference(&a, &b).unwrap(),
            "kernels disagree at {name}"
        );
        c.bench_with_input(BenchmarkId::new("matmul/reference", name), &(), |bch, ()| {
            bch.iter(|| ring_matmul_reference(black_box(&a), black_box(&b)).unwrap());
        });
        // Single thread first: isolates the deferred-masking + blocking win
        // from thread scaling.
        std::env::set_var("AQ2PNN_THREADS", "1");
        c.bench_with_input(BenchmarkId::new("matmul/blocked_1t", name), &(), |bch, ()| {
            bch.iter(|| ring_matmul(black_box(&a), black_box(&b)).unwrap());
        });
        std::env::remove_var("AQ2PNN_THREADS");
        c.bench_with_input(BenchmarkId::new("matmul/blocked_par", name), &(), |bch, ()| {
            bch.iter(|| ring_matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
}

fn bench_packing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    for &bits in PACK_BITS {
        let ring = Ring::new(bits);
        let elems: Vec<u64> = (0..PACK_COUNT).map(|_| ring.sample(&mut rng)).collect();
        let packed = pack_bits(&elems, bits);
        assert_eq!(packed, pack_bits_reference(&elems, bits));
        c.bench_with_input(BenchmarkId::new("pack/reference", bits), &(), |bch, ()| {
            bch.iter(|| pack_bits_reference(black_box(&elems), bits));
        });
        c.bench_with_input(BenchmarkId::new("pack/fast", bits), &(), |bch, ()| {
            bch.iter(|| pack_bits(black_box(&elems), bits));
        });
        c.bench_with_input(BenchmarkId::new("unpack/reference", bits), &(), |bch, ()| {
            bch.iter(|| unpack_bits_reference(black_box(&packed), bits, PACK_COUNT));
        });
        c.bench_with_input(BenchmarkId::new("unpack/fast", bits), &(), |bch, ()| {
            bch.iter(|| unpack_bits(black_box(&packed), bits, PACK_COUNT));
        });
    }
}

criterion_group!(kernels, bench_ring_matmul, bench_packing);

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the measurement registry (plus derived speedups) by hand —
/// the offline workspace carries no JSON dependency.
fn write_report(path: &str) -> std::io::Result<()> {
    let results = all_results();
    let ns = |name: &str| results.iter().find(|r| r.name == name).map(|r| r.ns_per_iter);
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_batch\": {}}}{sep}\n",
            json_escape(&r.name),
            r.ns_per_iter,
            r.iters
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &(name, ..) in GEMM_SHAPES {
        let (reference, single, par) = (
            ns(&format!("matmul/reference/{name}")),
            ns(&format!("matmul/blocked_1t/{name}")),
            ns(&format!("matmul/blocked_par/{name}")),
        );
        if let (Some(reference), Some(single), Some(par)) = (reference, single, par) {
            lines.push(format!(
                "    {{\"shape\": \"{name}\", \"single_thread_vs_reference\": {:.2}, \
                 \"parallel_vs_reference\": {:.2}}}",
                reference / single,
                reference / par
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::File::create(path)?.write_all(out.as_bytes())
}

fn main() {
    kernels();
    let path =
        std::env::var("BENCH_KERNELS_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    write_report(&path).expect("report written");
    println!("wrote {path}");
}
