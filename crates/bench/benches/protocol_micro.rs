//! Criterion micro-benchmarks of the protocol building blocks.
//!
//! Complements the table harnesses in `src/bin/` (which regenerate the
//! paper's tables) with wall-clock timings of the primitives on this
//! machine: ring ops, wire packing, OT batches, AS-GEMM, ABReLU, garbled
//! circuits and a full tiny 2PC inference.

use aq2pnn::abrelu::abrelu;
use aq2pnn::gemm::secure_matmul;
use aq2pnn::sim::{run_pair, run_two_party};
use aq2pnn::ProtocolConfig;
use aq2pnn_gc::circuit::{encode_inputs, relu_on_shares};
use aq2pnn_gc::evaluate::{decode_with, evaluate};
use aq2pnn_gc::garble::{garble, select_input_labels};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_ot::{recv_batch, send_batch, LabelTable, OtChoice, OtGroup};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use aq2pnn_transport::{duplex, pack_bits, unpack_bits};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ring(c: &mut Criterion) {
    let q = Ring::new(16);
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<u64> = (0..4096).map(|_| q.sample(&mut rng)).collect();
    c.bench_function("ring/mul_4096", |b| {
        b.iter(|| {
            let mut acc = 1u64;
            for &x in &xs {
                acc = q.mul(acc, black_box(x));
            }
            acc
        });
    });
    c.bench_function("ring/decode_signed_4096", |b| {
        b.iter(|| xs.iter().map(|&x| q.decode_signed(black_box(x))).sum::<i64>());
    });
}

fn bench_packing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let q = Ring::new(14);
    let elems: Vec<u64> = (0..4096).map(|_| q.sample(&mut rng)).collect();
    c.bench_function("transport/pack_14bit_4096", |b| b.iter(|| pack_bits(black_box(&elems), 14)));
    let packed = pack_bits(&elems, 14);
    c.bench_function("transport/unpack_14bit_4096", |b| {
        b.iter(|| unpack_bits(black_box(&packed), 14, 4096));
    });
}

fn bench_ot(c: &mut Criterion) {
    let group = OtGroup::power_of_two(16);
    let labels = LabelTable::generate(4, &group, &mut StdRng::seed_from_u64(3));
    c.bench_function("ot/batch_256_of_1of4", |b| {
        b.iter(|| {
            let (s, r) = duplex();
            let (g2, l2) = (group.clone(), labels.clone());
            let h = std::thread::spawn(move || {
                let batch: Vec<Vec<u64>> = (0..256).map(|i| vec![i, i + 1, i + 2, i + 3]).collect();
                send_batch(&s, &g2, &l2, &batch, 8, &mut StdRng::seed_from_u64(4)).unwrap();
            });
            let choices: Vec<OtChoice> =
                (0..256).map(|i| OtChoice { choice: i % 4, n: 4 }).collect();
            let got = recv_batch(&r, &group, &labels, &choices, 8, &mut StdRng::seed_from_u64(5))
                .unwrap();
            h.join().unwrap();
            got
        });
    });
}

fn bench_gemm(c: &mut Criterion) {
    let cfg = ProtocolConfig::paper(16);
    let ring = cfg.q1();
    let mut rng = StdRng::seed_from_u64(6);
    for size in [8usize, 32] {
        let a = RingTensor::random(ring, vec![size, size], &mut rng);
        let b = RingTensor::random(ring, vec![size, size], &mut rng);
        let (a0, a1) = AShare::share(&a, &mut rng);
        let (b0, b1) = AShare::share(&b, &mut rng);
        c.bench_with_input(BenchmarkId::new("gemm/secure_matmul", size), &size, |bch, _| {
            bch.iter(|| {
                let (a0, a1, b0, b1) = (a0.clone(), a1.clone(), b0.clone(), b1.clone());
                run_pair(&cfg, move |ctx| {
                    let (x, w) = match ctx.id {
                        PartyId::User => (a0.clone(), b0.clone()),
                        PartyId::ModelProvider => (a1.clone(), b1.clone()),
                    };
                    secure_matmul(ctx, &x, &w).unwrap()
                })
            });
        });
    }
}

fn bench_abrelu(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    for bits in [12u32, 16] {
        let cfg = ProtocolConfig::paper(bits);
        let ring = cfg.q1();
        let t = RingTensor::random(ring, vec![512], &mut rng);
        let (s0, s1) = AShare::share(&t, &mut rng);
        c.bench_with_input(BenchmarkId::new("abrelu/512_elems", bits), &bits, |bch, _| {
            bch.iter(|| {
                let (s0, s1) = (s0.clone(), s1.clone());
                run_pair(&cfg, move |ctx| {
                    let mine = match ctx.id {
                        PartyId::User => s0.clone(),
                        PartyId::ModelProvider => s1.clone(),
                    };
                    abrelu(ctx, &mine).unwrap()
                })
            });
        });
    }
}

fn bench_gc(c: &mut Criterion) {
    let circ = relu_on_shares(16);
    let mut rng = StdRng::seed_from_u64(8);
    c.bench_function("gc/garble_relu16", |b| b.iter(|| garble(black_box(&circ), &mut rng)));
    let garbled = garble(&circ, &mut rng);
    let inputs = encode_inputs(&circ, 100, 55, 16);
    c.bench_function("gc/eval_relu16", |b| {
        b.iter(|| {
            let labels = select_input_labels(&garbled, &inputs);
            let out = evaluate(&circ, &garbled, &labels);
            decode_with(&circ, &garbled, &out)
        });
    });
}

fn bench_inference(c: &mut Criterion) {
    let data = SyntheticVision::tiny(4, 99);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), 100).unwrap();
    net.train_epochs(&data, 1, 8, 0.05);
    let model = QuantModel::quantize(&net, &data.calibration(8), &QuantConfig::int8()).unwrap();
    let image = data.test()[0].image.clone();
    let cfg = ProtocolConfig::paper(16);
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    group.bench_function("tiny_cnn_2pc_full", |b| {
        b.iter(|| run_two_party(&model, &cfg, &image, 0).unwrap());
    });
    group.bench_function("tiny_cnn_plaintext_int8", |b| {
        b.iter(|| model.forward(black_box(&image)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ring,
    bench_packing,
    bench_ot,
    bench_gemm,
    bench_abrelu,
    bench_gc,
    bench_inference
);
criterion_main!(benches);
