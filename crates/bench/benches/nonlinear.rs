//! Criterion benchmarks of the batched nonlinear engine: full two-party
//! `secure_sign` batches (the ABReLU comparison core, paper Sec. 4.3/4.4)
//! at the paper's ring widths, in both OT schedules, across three engine
//! variants:
//!
//! * `reference_1t` — the pre-optimization serial path, vendored verbatim
//!   in [`baseline`]: square-and-multiply group exponentiation
//!   ([`OtGroup::power_of_two_reference`]), per-slot recomputation of the
//!   label powers `r̂^{e2l(t)}`, per-element `split_groups` allocations,
//!   nested per-item OT message vectors and the quadratic lazy-round
//!   membership scan — all on one thread,
//! * `engine_1t` — the batched engine (per-batch key cache, dlog LUT, flat
//!   A2BM buffers, linear lazy walk) pinned to one thread,
//! * `engine_par` — the same engine with the thread fan-out enabled.
//!
//! Before any timing, every variant is run once and checked: sign flags
//! must be bit-identical across variants (and equal to the plaintext
//! `(x_0 + x_1) mod Q > 0`), and the `ChannelStats` transcripts must be
//! byte-identical — the engine may never trade correctness or
//! communication volume for speed. A LUT guard additionally asserts that
//! ℓ ≤ 20 groups never hit the square-and-multiply fallback during engine
//! runs.
//!
//! The run emits `BENCH_nonlinear.json` with every measurement plus derived
//! speedups, giving the perf trajectory its first nonlinear datapoint next
//! to the PR-1 GEMM numbers.

use aq2pnn::abrelu::secure_sign;
use aq2pnn::sim::run_pair;
use aq2pnn::{ProtocolConfig, ReluMode, ReluRounds};
use aq2pnn_ot::{lut_fallback_hits, OtGroup};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use aq2pnn_transport::ChannelStats;
use criterion::{all_results, criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::io::Write;

/// The pre-PR serial `secure_sign` path, kept as the benchmark baseline.
///
/// This reproduces the hot path exactly as it stood before the batched
/// engine landed: the OT sender recomputes `r̂^{e2l(t)}` with
/// square-and-multiply for every slot of every item, A2BM splitting
/// allocates two `Vec`s per tensor element, the OT batch is a
/// `Vec<Vec<u64>>`, and the lazy second round rescans `undecided` per
/// element. Wire behavior (message sequence, byte counts, RNG draw order)
/// is identical to the engine, so the transcripts can be compared
/// byte-for-byte.
mod baseline {
    use aq2pnn::{PartyContext, ReluMode, ReluRounds};
    use aq2pnn_ot::{LabelTable, OtChoice, OtGroup};
    use aq2pnn_sharing::a2b::{group_widths, split_groups};
    use aq2pnn_sharing::{AShare, PartyId};
    use aq2pnn_transport::{
        pack_bits_reference, packed_len, unpack_bits_reference, Bytes, Endpoint,
    };
    use rand::Rng;

    /// Pre-PR wire codec: the generic per-element bit loop, with byte
    /// counts (and bytes) identical to today's fast paths.
    fn send_elems(ep: &Endpoint, elems: &[u64], bits: u32) {
        ep.send(Bytes::from(pack_bits_reference(elems, bits))).unwrap();
    }

    fn recv_elems(ep: &Endpoint, bits: u32, count: usize) -> Vec<u64> {
        let bytes = ep.recv().unwrap();
        assert!(bytes.len() >= packed_len(bits, count));
        unpack_bits_reference(&bytes, bits, count)
    }

    const LT: u64 = 1;
    const EQ: u64 = 2;
    const GT: u64 = 3;
    const CODE_BITS: u32 = 2;

    fn code(u_group: u8, slot: u8) -> u64 {
        match u_group.cmp(&slot) {
            std::cmp::Ordering::Less => LT,
            std::cmp::Ordering::Equal => EQ,
            std::cmp::Ordering::Greater => GT,
        }
    }

    fn sign_from_codes(codes: &[u64]) -> bool {
        let sign_cmp = codes[0];
        let rest = codes[1..].iter().copied().find(|&c| c != EQ).unwrap_or(EQ);
        if rest == EQ {
            return false;
        }
        if sign_cmp == EQ {
            rest == LT
        } else {
            rest == GT
        }
    }

    fn quadrant_decides(code1: u64) -> bool {
        code1 != EQ
    }

    fn send_batch<R: Rng + ?Sized>(
        ep: &Endpoint,
        group: &OtGroup,
        labels: &LabelTable,
        batch: &[Vec<u64>],
        msg_bits: u32,
        rng: &mut R,
    ) {
        let ebits = group.element_bits();
        let r_i = group.sample_exponent(rng);
        let r_hat = group.pow_g(r_i);
        send_elems(ep, &[r_hat], ebits);
        let r_matrix = recv_elems(ep, ebits, batch.len());
        let msg_mask = if msg_bits == 64 { u64::MAX } else { (1u64 << msg_bits) - 1 };
        let mut enc = Vec::with_capacity(batch.iter().map(Vec::len).sum());
        for (k, msgs) in batch.iter().enumerate() {
            for (t, &m) in msgs.iter().enumerate() {
                let unmasked = r_matrix[k] ^ group.pow(r_hat, labels.e2l(t));
                let key = group.pow(unmasked, r_i);
                enc.push((m ^ key) & msg_mask);
            }
        }
        send_elems(ep, &enc, msg_bits);
    }

    fn recv_batch<R: Rng + ?Sized>(
        ep: &Endpoint,
        group: &OtGroup,
        labels: &LabelTable,
        batch: &[OtChoice],
        msg_bits: u32,
        rng: &mut R,
    ) -> Vec<u64> {
        let ebits = group.element_bits();
        let r_hat = recv_elems(ep, ebits, 1)[0];
        let r_j: Vec<u64> = batch.iter().map(|_| group.sample_exponent(rng)).collect();
        let r_matrix: Vec<u64> = batch
            .iter()
            .zip(&r_j)
            .map(|(c, &rj)| group.pow(r_hat, labels.e2l(c.choice)) ^ group.pow_g(rj))
            .collect();
        send_elems(ep, &r_matrix, ebits);
        let total: usize = batch.iter().map(|c| c.n).sum();
        let enc = recv_elems(ep, msg_bits, total);
        let msg_mask = if msg_bits == 64 { u64::MAX } else { (1u64 << msg_bits) - 1 };
        let mut out = Vec::with_capacity(batch.len());
        let mut offset = 0usize;
        for (k, c) in batch.iter().enumerate() {
            let key = group.pow(r_hat, r_j[k]);
            out.push((enc[offset + c.choice] ^ key) & msg_mask);
            offset += c.n;
        }
        out
    }

    fn sender_batch(
        u_groups: &[Vec<u8>],
        widths: &[u32],
        from: usize,
        to: usize,
        subset: Option<&[usize]>,
    ) -> Vec<Vec<u64>> {
        let indices: Vec<usize> = match subset {
            Some(s) => s.to_vec(),
            None => (0..u_groups.len()).collect(),
        };
        let mut batch = Vec::with_capacity(indices.len() * (to - from));
        for &v in &indices {
            for g in from..to {
                let slots = 1usize << widths[g];
                batch.push((0..slots).map(|l| code(u_groups[v][g], l as u8)).collect());
            }
        }
        batch
    }

    fn receiver_choices(
        v_groups: &[Vec<u8>],
        widths: &[u32],
        from: usize,
        to: usize,
        subset: Option<&[usize]>,
    ) -> Vec<OtChoice> {
        let indices: Vec<usize> = match subset {
            Some(s) => s.to_vec(),
            None => (0..v_groups.len()).collect(),
        };
        let mut choices = Vec::with_capacity(indices.len() * (to - from));
        for &v in &indices {
            for g in from..to {
                choices.push(OtChoice { choice: v_groups[v][g] as usize, n: 1usize << widths[g] });
            }
        }
        choices
    }

    pub fn secure_sign(ctx: &mut PartyContext, x_q1: &AShare, mode: ReluMode) -> Option<Vec<u8>> {
        let ring = ctx.q1();
        let n = x_q1.len();
        let widths = group_widths(ring.bits());
        match ctx.id {
            PartyId::User => {
                let u_groups: Vec<Vec<u8>> = x_q1
                    .as_tensor()
                    .iter()
                    .map(|&x0| split_groups(ring, ring.neg(x0)).iter().map(|g| g.value).collect())
                    .collect();
                match ctx.cfg.relu_rounds {
                    ReluRounds::Single => {
                        let batch = sender_batch(&u_groups, &widths, 0, widths.len(), None);
                        send_batch(
                            &ctx.ep,
                            &ctx.group,
                            &ctx.labels,
                            &batch,
                            CODE_BITS,
                            &mut ctx.rng,
                        );
                    }
                    ReluRounds::Lazy => {
                        let batch = sender_batch(&u_groups, &widths, 0, 2, None);
                        send_batch(
                            &ctx.ep,
                            &ctx.group,
                            &ctx.labels,
                            &batch,
                            CODE_BITS,
                            &mut ctx.rng,
                        );
                        let bitmap = recv_elems(&ctx.ep, 1, n);
                        let undecided: Vec<usize> = bitmap
                            .iter()
                            .enumerate()
                            .filter(|(_, &b)| b == 1)
                            .map(|(i, _)| i)
                            .collect();
                        if !undecided.is_empty() {
                            let batch =
                                sender_batch(&u_groups, &widths, 2, widths.len(), Some(&undecided));
                            send_batch(
                                &ctx.ep,
                                &ctx.group,
                                &ctx.labels,
                                &batch,
                                CODE_BITS,
                                &mut ctx.rng,
                            );
                        }
                    }
                }
                match mode {
                    ReluMode::RevealedSign => {
                        let t_m = recv_elems(&ctx.ep, 1, n);
                        Some(t_m.iter().map(|&b| b as u8).collect())
                    }
                    ReluMode::MaskedMux => None,
                }
            }
            PartyId::ModelProvider => {
                let v_groups: Vec<Vec<u8>> = x_q1
                    .as_tensor()
                    .iter()
                    .map(|&x1| split_groups(ring, x1).iter().map(|g| g.value).collect())
                    .collect();
                let flags: Vec<u8> = match ctx.cfg.relu_rounds {
                    ReluRounds::Single => {
                        let choices = receiver_choices(&v_groups, &widths, 0, widths.len(), None);
                        let codes = recv_batch(
                            &ctx.ep,
                            &ctx.group,
                            &ctx.labels,
                            &choices,
                            CODE_BITS,
                            &mut ctx.rng,
                        );
                        let u = widths.len();
                        (0..n)
                            .map(|v| u8::from(sign_from_codes(&codes[v * u..(v + 1) * u])))
                            .collect()
                    }
                    ReluRounds::Lazy => {
                        let choices = receiver_choices(&v_groups, &widths, 0, 2, None);
                        let head = recv_batch(
                            &ctx.ep,
                            &ctx.group,
                            &ctx.labels,
                            &choices,
                            CODE_BITS,
                            &mut ctx.rng,
                        );
                        let undecided: Vec<usize> =
                            (0..n).filter(|&v| !quadrant_decides(head[2 * v + 1])).collect();
                        let bitmap: Vec<u64> =
                            (0..n).map(|v| u64::from(undecided.contains(&v))).collect();
                        send_elems(&ctx.ep, &bitmap, 1);
                        let tail = if undecided.is_empty() {
                            Vec::new()
                        } else {
                            let choices = receiver_choices(
                                &v_groups,
                                &widths,
                                2,
                                widths.len(),
                                Some(&undecided),
                            );
                            recv_batch(
                                &ctx.ep,
                                &ctx.group,
                                &ctx.labels,
                                &choices,
                                CODE_BITS,
                                &mut ctx.rng,
                            )
                        };
                        let rest_groups = widths.len() - 2;
                        let mut flags = Vec::with_capacity(n);
                        let mut cursor = 0usize;
                        for v in 0..n {
                            let mut codes = vec![head[2 * v], head[2 * v + 1]];
                            if undecided.contains(&v) {
                                codes.extend_from_slice(&tail[cursor..cursor + rest_groups]);
                                cursor += rest_groups;
                            }
                            flags.push(u8::from(sign_from_codes(&codes)));
                        }
                        flags
                    }
                };
                if mode == ReluMode::RevealedSign {
                    let t_m: Vec<u64> = flags.iter().map(|&b| u64::from(b)).collect();
                    send_elems(&ctx.ep, &t_m, 1);
                }
                Some(flags)
            }
        }
    }
}

/// (ring bits, batch elements): the paper's INT12/INT16 carriers at a
/// small and a conv-layer-sized activation count.
const CASES: &[(u32, usize)] = &[(12, 1024), (12, 16384), (16, 1024), (16, 16384)];

const ROUNDS: &[(ReluRounds, &str)] = &[(ReluRounds::Single, "single"), (ReluRounds::Lazy, "lazy")];

fn make_shares(bits: u32, n: usize) -> (Vec<u64>, Vec<u64>, Vec<u8>) {
    let ring = Ring::new(bits);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5151 ^ u64::from(bits) ^ n as u64);
    let s0: Vec<u64> = (0..n).map(|_| ring.sample(&mut rng)).collect();
    let s1: Vec<u64> = (0..n).map(|_| ring.sample(&mut rng)).collect();
    let expect: Vec<u8> = s0
        .iter()
        .zip(&s1)
        .map(|(&a, &b)| u8::from(ring.decode_signed(ring.add(a, b)) > 0))
        .collect();
    (s0, s1, expect)
}

/// One full two-party `secure_sign` batch; `reference` runs the vendored
/// pre-PR path on the square-and-multiply group (both parties).
fn run_sign(
    cfg: &ProtocolConfig,
    s0: &[u64],
    s1: &[u64],
    reference: bool,
) -> (Vec<u8>, ChannelStats, ChannelStats) {
    let ring = cfg.q1();
    let (s0, s1) = (s0.to_vec(), s1.to_vec());
    let ((flags, st0), (_, st1)) = run_pair(cfg, move |ctx| {
        if reference {
            ctx.group = OtGroup::power_of_two_reference(ctx.cfg.q1_bits);
        } else {
            assert!(
                ctx.group.lut_backed() == (ctx.cfg.q1_bits <= 20),
                "ℓ ≤ 20 engine groups must be LUT-backed"
            );
        }
        let raw = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        let t = RingTensor::from_raw(ring, vec![raw.len()], raw).unwrap();
        let share = AShare::from_tensor(t);
        ctx.ep.reset_stats();
        let flags = if reference {
            baseline::secure_sign(ctx, &share, ReluMode::RevealedSign).unwrap()
        } else {
            secure_sign(ctx, &share, ReluMode::RevealedSign).unwrap().flags.unwrap()
        };
        (flags, ctx.ep.stats())
    });
    (flags, st0, st1)
}

fn bench_secure_sign(c: &mut Criterion) {
    for &(bits, n) in CASES {
        let (s0, s1, expect) = make_shares(bits, n);
        for &(rounds, rname) in ROUNDS {
            let mut cfg = ProtocolConfig::paper(bits);
            cfg.relu_rounds = rounds;
            let case = format!("l{bits}_n{n}_{rname}");

            // Correctness + transcript-identity gate before any timing:
            // the pre-PR path, the serial engine and the parallel engine
            // must agree bit-for-bit and byte-for-byte, and the engine
            // must never fall off the LUT path.
            std::env::set_var("AQ2PNN_THREADS", "1");
            let reference = run_sign(&cfg, &s0, &s1, true);
            let fallbacks_before = lut_fallback_hits();
            let serial = run_sign(&cfg, &s0, &s1, false);
            std::env::remove_var("AQ2PNN_THREADS");
            let parallel = run_sign(&cfg, &s0, &s1, false);
            assert_eq!(lut_fallback_hits(), fallbacks_before, "engine left the LUT path: {case}");
            for (name, run) in [("reference", &reference), ("1t", &serial), ("par", &parallel)] {
                assert_eq!(run.0, expect, "wrong sign flags ({name}): {case}");
            }
            assert_eq!(reference.1, serial.1, "user transcript drifted (1t): {case}");
            assert_eq!(reference.1, parallel.1, "user transcript drifted (par): {case}");
            assert_eq!(reference.2, serial.2, "provider transcript drifted (1t): {case}");
            assert_eq!(reference.2, parallel.2, "provider transcript drifted (par): {case}");

            std::env::set_var("AQ2PNN_THREADS", "1");
            c.bench_with_input(BenchmarkId::new("sign/reference_1t", &case), &(), |bch, ()| {
                bch.iter(|| run_sign(&cfg, &s0, &s1, true));
            });
            c.bench_with_input(BenchmarkId::new("sign/engine_1t", &case), &(), |bch, ()| {
                bch.iter(|| run_sign(&cfg, &s0, &s1, false));
            });
            std::env::remove_var("AQ2PNN_THREADS");
            c.bench_with_input(BenchmarkId::new("sign/engine_par", &case), &(), |bch, ()| {
                bch.iter(|| run_sign(&cfg, &s0, &s1, false));
            });
        }
    }
}

criterion_group!(nonlinear, bench_secure_sign);

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the measurement registry (plus derived speedups) by hand —
/// the offline workspace carries no JSON dependency.
fn write_report(path: &str) -> std::io::Result<()> {
    let results = all_results();
    let ns = |name: &str| results.iter().find(|r| r.name == name).map(|r| r.ns_per_iter);
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_batch\": {}}}{sep}\n",
            json_escape(&r.name),
            r.ns_per_iter,
            r.iters
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut lines = Vec::new();
    for &(bits, n) in CASES {
        for &(_, rname) in ROUNDS {
            let case = format!("l{bits}_n{n}_{rname}");
            let (reference, single, par) = (
                ns(&format!("sign/reference_1t/{case}")),
                ns(&format!("sign/engine_1t/{case}")),
                ns(&format!("sign/engine_par/{case}")),
            );
            if let (Some(reference), Some(single), Some(par)) = (reference, single, par) {
                lines.push(format!(
                    "    {{\"case\": \"{case}\", \"engine_1t_vs_reference\": {:.2}, \
                     \"parallel_vs_reference\": {:.2}, \"parallel_vs_engine_1t\": {:.2}}}",
                    reference / single,
                    reference / par,
                    single / par
                ));
            }
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::File::create(path)?.write_all(out.as_bytes())
}

fn main() {
    nonlinear();
    let path = std::env::var("BENCH_NONLINEAR_JSON")
        .unwrap_or_else(|_| "BENCH_nonlinear.json".to_string());
    write_report(&path).expect("report written");
    println!("wrote {path}");
}
