//! Baselines for the AQ2PNN evaluation.
//!
//! Two kinds, mirroring the paper's methodology (Sec. 6.1: "All solutions
//! adhere to the platform configurations specified in the original
//! papers", i.e. the SOTA rows of Table 4 are *reported* numbers):
//!
//! * [`reported`] — the published Falcon / CryptFlow / CryptGPU figures the
//!   paper compares against, encoded as clearly-labelled constants.
//! * [`fixed_ring`] — the Fig. 9(b) "previous works" flow executed on
//!   *our own* engine: a fixed 32- or 64-bit ring with no adaptivity.
//!   This is the apples-to-apples ablation isolating what adaptive
//!   quantization itself buys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed_ring;
pub mod reported;
