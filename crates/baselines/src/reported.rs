//! Published SOTA numbers (paper Table 4 and Sec. 5.2/6), verbatim.
//!
//! These are *reported* values from the cited papers' own testbeds — the
//! same sourcing the paper uses for its comparison rows. Nothing here is
//! measured by this reproduction; the harnesses print them side by side
//! with our measured/modeled AQ2PNN rows.

use serde::{Deserialize, Serialize};

/// Which system a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// Falcon (Wagh et al.), honest-majority 3PC.
    Falcon,
    /// CryptFlow (Kumar et al.), ABY2-based 2PC, CPU.
    Cryptflow,
    /// CryptGPU (Tan et al.), GPU, run in its 2-out-of-2 setting.
    CryptGpu,
    /// AQ2PNN as reported by the paper (16-bit).
    Aq2pnnPaper,
}

impl System {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            System::Falcon => "Falcon",
            System::Cryptflow => "Cryptflow",
            System::CryptGpu => "CryptGPU",
            System::Aq2pnnPaper => "AQ2PNN (paper)",
        }
    }
}

/// One reported Table 4 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportedRow {
    /// The system.
    pub system: System,
    /// Model + dataset label, e.g. `"lenet5-mnist"`.
    pub workload: &'static str,
    /// Throughput, frames per second.
    pub tput_fps: f64,
    /// Communication volume, MiB.
    pub comm_mib: f64,
    /// Power per machine, W.
    pub power_w: f64,
    /// Number of machines the power figure multiplies over.
    pub machines: u32,
    /// Energy efficiency, fps/W (as reported).
    pub efficiency: f64,
}

impl ReportedRow {
    /// Total platform power (all machines).
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.power_w * f64::from(self.machines)
    }
}

/// All rows of paper Table 4.
#[must_use]
pub fn table4() -> Vec<ReportedRow> {
    use System::{Aq2pnnPaper, CryptGpu, Cryptflow, Falcon};
    vec![
        // Small-size models.
        ReportedRow {
            system: Falcon,
            workload: "lenet5-mnist",
            tput_fps: 26.316,
            comm_mib: 2.29,
            power_w: 133.0,
            machines: 3,
            efficiency: 0.065_354,
        },
        ReportedRow {
            system: Aq2pnnPaper,
            workload: "lenet5-mnist",
            tput_fps: 16.68,
            comm_mib: 0.95,
            power_w: 7.2,
            machines: 2,
            efficiency: 1.158_333,
        },
        ReportedRow {
            system: Falcon,
            workload: "alexnet-mnist",
            tput_fps: 9.091,
            comm_mib: 4.02,
            power_w: 139.0,
            machines: 3,
            efficiency: 0.021_801,
        },
        ReportedRow {
            system: Aq2pnnPaper,
            workload: "alexnet-mnist",
            tput_fps: 6.081,
            comm_mib: 1.2,
            power_w: 7.4,
            machines: 2,
            efficiency: 0.410_878,
        },
        // Medium-size models.
        ReportedRow {
            system: Falcon,
            workload: "vgg16-cifar10",
            tput_fps: 0.694,
            comm_mib: 40.45,
            power_w: 185.0,
            machines: 3,
            efficiency: 0.001_250,
        },
        ReportedRow {
            system: CryptGpu,
            workload: "vgg16-cifar10",
            tput_fps: 0.467,
            comm_mib: 56.20,
            power_w: 289.0,
            machines: 2,
            efficiency: 0.000_807,
        },
        ReportedRow {
            system: Aq2pnnPaper,
            workload: "vgg16-cifar10",
            tput_fps: 0.352,
            comm_mib: 28.87,
            power_w: 7.7,
            machines: 2,
            efficiency: 0.022_857,
        },
        // Large-size models.
        ReportedRow {
            system: Cryptflow,
            workload: "resnet50-imagenet",
            tput_fps: 0.039,
            comm_mib: 6900.0,
            power_w: 178.0,
            machines: 2,
            efficiency: 0.000_110,
        },
        ReportedRow {
            system: CryptGpu,
            workload: "resnet50-imagenet",
            tput_fps: 0.107,
            comm_mib: 3080.0,
            power_w: 306.0,
            machines: 2,
            efficiency: 0.000_175,
        },
        ReportedRow {
            system: Aq2pnnPaper,
            workload: "resnet50-imagenet",
            tput_fps: 0.071,
            comm_mib: 1120.0,
            power_w: 7.7,
            machines: 2,
            efficiency: 0.004_610,
        },
        ReportedRow {
            system: CryptGpu,
            workload: "vgg16-imagenet",
            tput_fps: 0.106,
            comm_mib: 2750.0,
            power_w: 315.0,
            machines: 2,
            efficiency: 0.000_168,
        },
        ReportedRow {
            system: Aq2pnnPaper,
            workload: "vgg16-imagenet",
            tput_fps: 0.038,
            comm_mib: 1410.0,
            power_w: 7.7,
            machines: 2,
            efficiency: 0.002_468,
        },
    ]
}

/// Paper Table 2's reported accuracies (%), per dataset/model:
/// (float32 baseline, previous-works quantization, AQ2PNN 16-bit).
#[must_use]
pub fn table2_accuracy() -> Vec<(&'static str, f64, f64, f64)> {
    vec![
        ("lenet5-mnist", 99.26, 96.85, 99.34),
        ("alexnet-mnist", 99.09, 97.42, 99.11),
        ("vgg16-cifar10", 92.28, 91.98, 91.69),
        ("resnet18-cifar10", 93.02, 92.79, 93.06),
        ("vgg16-imagenet", 73.02, 72.73, 72.08),
        ("resnet18-imagenet", 73.06, 72.87, 72.59),
        ("resnet50-imagenet", 77.72, 77.47, 76.24),
    ]
}

/// Paper Table 7 (ResNet18-ImageNet) and Table 8 (VGG16-ImageNet):
/// per bit-width `(bits, top1_max, fps_max, comm_max, top1_avg, fps_avg,
/// comm_avg)` with max/avg pooling.
#[must_use]
pub fn table7_resnet18() -> Vec<(u32, f64, f64, f64, f64, f64, f64)> {
    vec![
        (32, 73.06, 0.157, 894.0, 65.23, 86.48, 618.0),
        (24, 72.87, 0.198, 520.0, 64.79, 86.16, 361.0),
        (16, 72.60, 0.243, 246.0, 64.93, 86.30, 172.0),
        (14, 67.00, 0.276, 194.0, 54.04, 78.64, 136.0),
        (12, 29.63, 0.311, 147.0, 19.86, 40.33, 104.0),
    ]
}

/// Paper Table 8 rows (VGG16-ImageNet).
#[must_use]
pub fn table8_vgg16() -> Vec<(u32, f64, f64, f64, f64, f64, f64)> {
    vec![
        (32, 73.02, 0.030, 5216.0, 68.24, 0.040, 3145.0),
        (24, 72.73, 0.033, 3015.0, 68.27, 0.041, 1823.0),
        (16, 72.08, 0.038, 1412.0, 68.17, 0.045, 858.0),
        (14, 71.60, 0.043, 1104.0, 66.64, 0.050, 673.0),
        (12, 35.18, 0.049, 835.0, 11.37, 0.061, 809.0),
    ]
}

/// Paper Table 6: ImageNet validation accuracy with Max vs Average
/// pooling after retraining: `(model, avg, max)`.
#[must_use]
pub fn table6_pooling() -> Vec<(&'static str, f64, f64)> {
    vec![
        ("resnet18-imagenet", 65.234, 72.872),
        ("resnet50-imagenet", 70.42, 77.47),
        ("vgg16-imagenet", 68.24, 72.73),
    ]
}

/// Paper Table 5: operator-wise profiling of ResNet50 building block 6:
/// `(bits, conv_ms, abrelu_ms, bnreq_ms, comm_mib)`.
#[must_use]
pub fn table5_block6() -> Vec<(u32, f64, f64, f64, f64)> {
    vec![(32, 42.76, 140.01, 13.87, 36.92), (16, 40.12, 65.83, 10.65, 18.46)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_efficiency_consistent_with_power() {
        for row in table4() {
            let eff = row.tput_fps / row.total_power_w();
            assert!(
                (eff - row.efficiency).abs() / row.efficiency < 0.02,
                "{} {}: {eff} vs {}",
                row.system.name(),
                row.workload,
                row.efficiency
            );
        }
    }

    #[test]
    fn paper_headline_claims_hold_in_reported_data() {
        let rows = table4();
        let find = |sys: System, wl: &str| {
            rows.iter().find(|r| r.system == sys && r.workload == wl).copied().unwrap()
        };
        // "energy efficiency … 26.3× (ResNet50 vs CryptGPU)".
        let aq = find(System::Aq2pnnPaper, "resnet50-imagenet");
        let gpu = find(System::CryptGpu, "resnet50-imagenet");
        let ratio = aq.efficiency / gpu.efficiency;
        assert!((25.0..28.0).contains(&ratio), "efficiency ratio {ratio}");
        // "41.9× vs Cryptflow".
        let cf = find(System::Cryptflow, "resnet50-imagenet");
        let ratio = aq.efficiency / cf.efficiency;
        assert!((40.0..44.0).contains(&ratio), "vs cryptflow {ratio}");
        // "communication reduced 2.75× vs CryptGPU on ResNet50".
        let ratio = gpu.comm_mib / aq.comm_mib;
        assert!((2.6..2.9).contains(&ratio), "comm ratio {ratio}");
    }

    #[test]
    fn table7_shows_the_12bit_cliff() {
        let rows = table7_resnet18();
        let acc16 = rows.iter().find(|r| r.0 == 16).unwrap().1;
        let acc12 = rows.iter().find(|r| r.0 == 12).unwrap().1;
        assert!(acc16 - acc12 > 40.0, "cliff {acc16} -> {acc12}");
    }
}
