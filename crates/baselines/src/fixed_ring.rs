//! The Fig. 9(b) "previous works" flow on our own engine: a fixed-width
//! ring with no per-stage adaptivity.
//!
//! DELPHI and Falcon pin the whole pipeline to 32 bits; CryptGPU to 64
//! (its `CUDALongTensor` "GPU-friendly cryptography"). Running the same
//! engine with those fixed rings isolates the benefit of adaptive
//! quantization from every other system difference — the cleanest ablation
//! of the paper's core idea.

use aq2pnn::ProtocolConfig;

/// A fixed 32-bit-ring configuration (DELPHI / Falcon style): every stage
/// — carrier, MAC ring, ABReLU wires — runs at 32 bits.
#[must_use]
pub fn fixed32() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::paper(32);
    cfg.q2_bits = 32;
    cfg
}

/// A fixed 48-bit-ring configuration standing in for CryptGPU's 64-bit
/// `CUDALongTensor` flow (our simulator's ring tops out at 48 usable bits
/// for the ABReLU group machinery; the scaling trend is identical).
#[must_use]
pub fn fixed48() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::paper(48);
    cfg.q2_bits = 48;
    cfg
}

/// The adaptive AQ2PNN configuration at the paper's sweet spot.
#[must_use]
pub fn adaptive16() -> ProtocolConfig {
    ProtocolConfig::paper(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq2pnn::instq::compile_spec;
    use aq2pnn_nn::zoo;

    #[test]
    fn adaptive_beats_fixed_rings_on_communication() {
        let spec = zoo::resnet18_imagenet();
        let adaptive = compile_spec(&spec, &adaptive16()).unwrap().online_total_bytes();
        let f32r = compile_spec(&spec, &fixed32()).unwrap().online_total_bytes();
        let f48r = compile_spec(&spec, &fixed48()).unwrap().online_total_bytes();
        assert!(adaptive < f32r, "adaptive {adaptive} vs fixed32 {f32r}");
        assert!(f32r < f48r, "fixed32 {f32r} vs fixed48 {f48r}");
        // The paper's headline "communication reduced by ≥25%" is easily
        // cleared against the fixed-32 flow.
        assert!((f32r as f64) / (adaptive as f64) > 1.25);
    }

    #[test]
    fn fixed_ring_configs_are_uniform() {
        assert_eq!(fixed32().q1_bits, fixed32().q2_bits);
        assert_eq!(fixed48().q1_bits, fixed48().q2_bits);
    }
}
