//! Streaming SLO latency tracking for the inference server.
//!
//! Three latency classes are tracked per server (schema v4):
//!
//! | class       | histogram                 | measures                       |
//! |-------------|---------------------------|--------------------------------|
//! | `admission` | `server.slo.admission_ms` | hello-accepted → run slot held |
//! | `online`    | `server.slo.online_ms`    | one online inference pass      |
//! | `e2e`       | `server.slo.e2e_ms`       | admission → session completed  |
//!
//! Every class shares the same **fixed log-spaced bucket edges**
//! ([`SLO_BUCKET_BOUNDS_MS`]), so recording an observation never
//! allocates after the first one and exporting is a fixed-size copy —
//! both matter because `observe` sits on the server's online path under
//! the `obs_overhead` gate. Quantile gauges
//! (`server.slo.<class>.p{50,90,99}`) are *not* maintained on the hot
//! path; [`SloTracker::recompute_gauges`] derives them from the bucket
//! counts by linear interpolation, and the admin endpoint calls it once
//! per `/metrics` scrape. An optional budget (`--slo-ms`) raises the
//! `server.slo_violations` counter whenever an end-to-end session
//! exceeds it.

use crate::metrics::{Counter, Histogram, MetricsRegistry};

/// Fixed upper bucket bounds (milliseconds) shared by every SLO
/// histogram: 0.25 ms · 2^k for k = 0..22, spanning 0.25 ms to ~17 min.
/// Fixed edges keep the export allocation-free and make histograms from
/// different runs mergeable bucket-by-bucket.
pub const SLO_BUCKET_BOUNDS_MS: [f64; 23] = [
    0.25,
    0.5,
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    2048.0,
    4096.0,
    8192.0,
    16384.0,
    32768.0,
    65536.0,
    131_072.0,
    262_144.0,
    524_288.0,
    1_048_576.0,
];

/// The latency class an observation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloClass {
    /// Admission wait: hello accepted until a run slot is held.
    Admission,
    /// One online inference pass (the latency a client sees per batch).
    Online,
    /// End-to-end: admission until clean session completion.
    EndToEnd,
}

impl SloClass {
    /// All classes, for scrape-time iteration.
    pub const ALL: [SloClass; 3] = [SloClass::Admission, SloClass::Online, SloClass::EndToEnd];

    /// The short class label used in metric names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Admission => "admission",
            SloClass::Online => "online",
            SloClass::EndToEnd => "e2e",
        }
    }

    /// The histogram name for this class.
    #[must_use]
    pub fn hist_name(self) -> &'static str {
        match self {
            SloClass::Admission => "server.slo.admission_ms",
            SloClass::Online => "server.slo.online_ms",
            SloClass::EndToEnd => "server.slo.e2e_ms",
        }
    }
}

/// Records latency observations and recomputes quantile gauges on
/// scrape. Cheap to clone; clones share the underlying registry.
#[derive(Debug, Clone)]
pub struct SloTracker {
    metrics: MetricsRegistry,
    template: Histogram,
    slo_ms: Option<f64>,
    violations: Counter,
}

impl SloTracker {
    /// A tracker recording into `metrics`. `slo_ms` is the optional
    /// end-to-end latency budget; sessions exceeding it bump
    /// `server.slo_violations`.
    #[must_use]
    pub fn new(metrics: &MetricsRegistry, slo_ms: Option<f64>) -> Self {
        SloTracker {
            metrics: metrics.clone(),
            template: Histogram::new(&SLO_BUCKET_BOUNDS_MS),
            slo_ms,
            violations: metrics.counter("server.slo_violations"),
        }
    }

    /// The configured end-to-end budget, if any.
    #[must_use]
    pub fn slo_ms(&self) -> Option<f64> {
        self.slo_ms
    }

    /// Records one latency observation for `class`. End-to-end
    /// observations over the budget raise `server.slo_violations`.
    pub fn observe(&self, class: SloClass, ms: f64) {
        self.metrics.observe_with(class.hist_name(), &self.template, ms);
        if class == SloClass::EndToEnd {
            if let Some(budget) = self.slo_ms {
                if ms > budget {
                    self.violations.inc();
                }
            }
        }
    }

    /// Recomputes the `server.slo.<class>.p{50,90,99}` gauges from the
    /// current histogram buckets. Called on scrape (and at export time),
    /// never on the hot path.
    pub fn recompute_gauges(&self) {
        let snap = self.metrics.snapshot();
        for class in SloClass::ALL {
            if let Some(h) = snap.histograms.get(class.hist_name()) {
                if h.count == 0 {
                    continue;
                }
                for (p, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                    let name = format!("server.slo.{}.{}", class.label(), p);
                    self.metrics.gauge_set(&name, quantile(h, q));
                }
            }
        }
    }
}

/// Estimates the `q`-quantile (0 < q <= 1) of a histogram by linear
/// interpolation inside the bucket holding the target rank. The first
/// bucket interpolates from zero; ranks landing in the overflow bucket
/// report the last finite bound (the histogram cannot resolve beyond
/// it). An empty histogram reports 0.
#[must_use]
pub fn quantile(h: &Histogram, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let target = q.clamp(0.0, 1.0) * h.count as f64;
    let mut cum = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let reach = (cum + c) as f64;
        if c > 0 && reach >= target {
            // Overflow bucket: the histogram cannot resolve beyond its
            // last finite bound.
            let Some(&hi) = h.bounds.get(i) else { return *h.bounds.last().unwrap_or(&0.0) };
            let lo = if i == 0 { 0.0 } else { h.bounds[i - 1] };
            #[allow(clippy::cast_precision_loss)]
            let frac = (target - cum as f64) / c as f64;
            return lo + (hi - lo) * frac.clamp(0.0, 1.0);
        }
        cum += c;
    }
    *h.bounds.last().unwrap_or(&0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 4 observations in (1, 2]: p50 → halfway through that bucket.
        for v in [1.2, 1.4, 1.6, 1.8] {
            h.observe(v);
        }
        let p50 = quantile(&h, 0.5);
        assert!((p50 - 1.5).abs() < 1e-9, "p50 = {p50}");
        assert!((quantile(&h, 1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert!(quantile(&h, 0.5).abs() < f64::EPSILON, "empty histogram → 0");
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0); // overflow bucket
        assert!((quantile(&h, 0.99) - 2.0).abs() < 1e-9, "overflow reports last bound");
    }

    #[test]
    fn tracker_records_and_recomputes_gauges() {
        let m = MetricsRegistry::new();
        let slo = SloTracker::new(&m, Some(10.0));
        for ms in [1.0, 2.0, 3.0, 50.0] {
            slo.observe(SloClass::Online, ms);
        }
        slo.observe(SloClass::EndToEnd, 5.0);
        slo.observe(SloClass::EndToEnd, 25.0); // over the 10 ms budget
        slo.recompute_gauges();
        let snap = m.snapshot();
        assert_eq!(snap.counters["server.slo_violations"], 1);
        assert_eq!(snap.histograms["server.slo.online_ms"].count, 4);
        assert!(snap.gauges.contains_key("server.slo.online.p50"));
        assert!(snap.gauges.contains_key("server.slo.e2e.p99"));
        let p99 = snap.gauges["server.slo.online.p99"];
        assert!(p99 > 32.0 && p99 <= 64.0, "p99 in the 50 ms bucket, got {p99}");
        // Admission never observed → no gauge invented for it.
        assert!(!snap.gauges.contains_key("server.slo.admission.p50"));
    }

    #[test]
    fn bucket_bounds_are_fixed_and_ascending() {
        assert!(SLO_BUCKET_BOUNDS_MS.windows(2).all(|w| w[0] < w[1]));
        let h = Histogram::new(&SLO_BUCKET_BOUNDS_MS);
        assert_eq!(h.counts.len(), SLO_BUCKET_BOUNDS_MS.len() + 1);
    }
}
