//! Prometheus-style text exposition for [`MetricsSnapshot`].
//!
//! This is the body served by the server's admin `GET /metrics` and
//! consumed by `cargo xtask watch`. The format follows the Prometheus
//! text conventions (`# TYPE` lines, cumulative `_bucket{le="…"}`
//! samples, `_sum`/`_count`) with one deliberate deviation: metric names
//! keep their dotted schema spelling (`server.queue_wait_ms`) instead of
//! being sanitised to underscores. Sanitising would be lossy — the whole
//! point of the exposition is that [`parse_text`] round-trips every name
//! and value back into the exact [`MetricsSnapshot`], histogram buckets
//! included, so the watcher and the schema-compat tests never chase two
//! namings of one metric.
//!
//! Values are rendered with Rust's shortest-round-trip float formatting,
//! so `parse_text(render_text(s)) == s` bit-for-bit for every finite
//! value the registry can hold.

use crate::metrics::{Histogram, MetricsSnapshot, METRICS_SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the snapshot as the text exposition body.
///
/// The first line is `# SCHEMA <version>` so scrapers can validate the
/// name schema before keying on any metric.
#[must_use]
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# SCHEMA {METRICS_SCHEMA_VERSION}");
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative = cumulative.saturating_add(*count);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative = cumulative.saturating_add(*h.counts.last().unwrap_or(&0));
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// The schema version declared by an exposition body, if any.
#[must_use]
pub fn text_schema_version(text: &str) -> Option<u64> {
    let first = text.lines().next()?;
    first.strip_prefix("# SCHEMA ")?.trim().parse().ok()
}

#[derive(Default)]
struct HistAccum {
    bounds: Vec<f64>,
    cumulative: Vec<u64>,
    inf: Option<u64>,
    sum: f64,
    count: u64,
}

/// Parses an exposition body produced by [`render_text`] back into a
/// snapshot. Inverse of [`render_text`]: every counter, gauge and
/// histogram (bounds, per-bucket counts, sum, count) is reconstructed
/// exactly.
///
/// # Errors
///
/// Returns a description of the first malformed line, unknown sample
/// (a sample with no preceding `# TYPE`), or unsupported schema version.
pub fn parse_text(text: &str) -> Result<MetricsSnapshot, String> {
    if let Some(v) = text_schema_version(text) {
        if v == 0 || v > METRICS_SCHEMA_VERSION {
            return Err(format!("exposition: unsupported schema version {v}"));
        }
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut snap = MetricsSnapshot::default();
    let mut hists: BTreeMap<String, HistAccum> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next(), it.next());
            match (name, kind) {
                (Some(n), Some(k)) => {
                    types.insert(n.to_owned(), k.to_owned());
                }
                _ => return Err(format!("exposition: malformed TYPE line {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment / SCHEMA header
        }
        let (sample, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("exposition: malformed sample line {line:?}"))?;
        // Histogram samples carry suffixed names; try those first.
        if let Some((base, le)) = split_bucket(sample) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                let acc = hists.entry(base.to_owned()).or_default();
                let cum: u64 =
                    value.parse().map_err(|_| format!("exposition: bad bucket count {line:?}"))?;
                if le == "+Inf" {
                    acc.inf = Some(cum);
                } else {
                    let bound: f64 =
                        le.parse().map_err(|_| format!("exposition: bad bucket bound {line:?}"))?;
                    acc.bounds.push(bound);
                    acc.cumulative.push(cum);
                }
                continue;
            }
        }
        if let Some(base) = sample.strip_suffix("_sum") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                hists.entry(base.to_owned()).or_default().sum =
                    value.parse().map_err(|_| format!("exposition: bad sum {line:?}"))?;
                continue;
            }
        }
        if let Some(base) = sample.strip_suffix("_count") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                hists.entry(base.to_owned()).or_default().count =
                    value.parse().map_err(|_| format!("exposition: bad count {line:?}"))?;
                continue;
            }
        }
        match types.get(sample).map(String::as_str) {
            Some("counter") => {
                let v: u64 =
                    value.parse().map_err(|_| format!("exposition: bad counter {line:?}"))?;
                snap.counters.insert(sample.to_owned(), v);
            }
            Some("gauge") => {
                let v: f64 =
                    value.parse().map_err(|_| format!("exposition: bad gauge {line:?}"))?;
                snap.gauges.insert(sample.to_owned(), v);
            }
            _ => return Err(format!("exposition: sample {sample:?} has no TYPE declaration")),
        }
    }
    for (name, acc) in hists {
        let inf = acc.inf.ok_or_else(|| format!("exposition: histogram {name} missing +Inf"))?;
        if acc.bounds.is_empty() {
            return Err(format!("exposition: histogram {name} has no buckets"));
        }
        // De-accumulate the cumulative bucket counts back to per-bucket.
        let mut counts = Vec::with_capacity(acc.cumulative.len() + 1);
        let mut prev = 0u64;
        for &c in &acc.cumulative {
            counts.push(c.saturating_sub(prev));
            prev = c;
        }
        counts.push(inf.saturating_sub(prev));
        snap.histograms
            .insert(name, Histogram { bounds: acc.bounds, counts, sum: acc.sum, count: acc.count });
    }
    Ok(snap)
}

/// Splits `name_bucket{le="X"}` into `(name, X)`.
fn split_bucket(sample: &str) -> Option<(&str, &str)> {
    let (base, rest) = sample.split_once("_bucket{le=\"")?;
    let le = rest.strip_suffix("\"}")?;
    Some((base, le))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn exposition_round_trips_every_metric() {
        let m = MetricsRegistry::new();
        m.add("dealer.hits", 42);
        m.add("server.slo_violations", 1);
        m.gauge_set("server.inflight", 3.0);
        m.gauge_set("server.slo.e2e.p99", 41.517);
        m.gauge_set("server.drain_ms", 0.125);
        m.observe_with("server.queue_wait_ms", &Histogram::new(&[0.25, 0.5, 1.0]), 0.2);
        m.observe_with("server.queue_wait_ms", &Histogram::new(&[0.25, 0.5, 1.0]), 0.4);
        m.observe_with("server.queue_wait_ms", &Histogram::new(&[0.25, 0.5, 1.0]), 99.0);
        m.observe_with("engine.batch_size", &Histogram::exponential(1.0, 4.0, 6), 16.0);
        let snap = m.snapshot();
        let text = render_text(&snap);
        assert_eq!(text_schema_version(&text), Some(METRICS_SCHEMA_VERSION));
        let back = parse_text(&text).expect("rendered exposition parses");
        // No silent drops: every name and value survives, histogram
        // buckets included.
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn bucket_lines_are_cumulative() {
        let m = MetricsRegistry::new();
        let h = Histogram::new(&[1.0, 2.0]);
        m.observe_with("h.ms", &h, 0.5);
        m.observe_with("h.ms", &h, 1.5);
        m.observe_with("h.ms", &h, 9.0);
        let text = render_text(&m.snapshot());
        assert!(text.contains("h.ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("h.ms_bucket{le=\"2\"} 2"));
        assert!(text.contains("h.ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("h.ms_count 3"));
    }

    #[test]
    fn unknown_sample_and_bad_version_rejected() {
        assert!(parse_text("orphan 3\n").is_err());
        assert!(parse_text("# SCHEMA 99\n").is_err());
        assert!(parse_text("# SCHEMA 0\n").is_err());
        // An empty but versioned body is a valid (empty) snapshot.
        let snap = parse_text(&format!("# SCHEMA {METRICS_SCHEMA_VERSION}\n")).unwrap();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}
