//! The paper-style cost report.
//!
//! Aggregates span data into a per-layer table of communication (MiB),
//! rounds and latency (ms), online vs offline, with both parties side by
//! side — the shape of the source paper's per-layer cost tables. The
//! report is built from **span data alone** (live [`SpanRecord`]s or a
//! parsed Chrome trace), so it reconstructs identically from an emitted
//! `trace.json`.
//!
//! ## Span conventions the report consumes
//!
//! - Top-level spans (no parent) are the accounting unit: their
//!   `bytes_sent`/`bytes_recv`/`rounds` arguments are **mutually
//!   exclusive** channel deltas, so summing top-level spans reconciles
//!   with `ChannelStats::total_bytes()`.
//! - Category [`CAT_OFFLINE`] marks preprocessing cost; everything else
//!   top-level counts as online. Rows merge by span name, so an offline
//!   span named `conv0` lands in the same row as the online `conv0` span.
//! - Category [`CAT_STAGE`] spans are sub-rows; they carry a [`ARG_LAYER`]
//!   argument naming their enclosing layer (kept in the Chrome export,
//!   where parent links are lost).

use crate::chrome::ChromeEvent;
use crate::tracer::{ArgValue, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Category of per-layer online spans.
pub const CAT_LAYER: &str = "layer";
/// Category of protocol-stage child spans (GEMM, trunc, A2BM, OT-flow, …).
pub const CAT_STAGE: &str = "stage";
/// Category of offline/preprocessing spans.
pub const CAT_OFFLINE: &str = "offline";

/// Argument: bytes sent over the channel during the span.
pub const ARG_BYTES_SENT: &str = "bytes_sent";
/// Argument: bytes received over the channel during the span.
pub const ARG_BYTES_RECV: &str = "bytes_recv";
/// Argument: communication rounds (direction flips) during the span.
pub const ARG_ROUNDS: &str = "rounds";
/// Argument: ring width ℓ in bits.
pub const ARG_RING_BITS: &str = "ring_bits";
/// Argument: public tensor shape rendering (`1x6x24x24`).
pub const ARG_SHAPE: &str = "shape";
/// Argument on stage spans: name of the enclosing layer span.
pub const ARG_LAYER: &str = "layer";

/// Accumulated cost for one party within one row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartyCost {
    /// Channel bytes (sent + received) attributed to the row.
    pub bytes: u64,
    /// Communication rounds attributed to the row.
    pub rounds: u64,
    /// Wall-clock milliseconds spent in the row's spans.
    pub ms: f64,
}

impl PartyCost {
    fn absorb(&mut self, bytes: u64, rounds: u64, ms: f64) {
        self.bytes += bytes;
        self.rounds += rounds;
        self.ms += ms;
    }

    /// Bytes as mebibytes.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mib(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0)
    }
}

/// A protocol-stage sub-row (online only — offline work has no stages).
#[derive(Debug, Clone, Default)]
pub struct StageRow {
    /// Stage name (`gemm`, `a2bm`, `ot-flow`, …).
    pub name: String,
    /// Per-party cost, keyed by party id.
    pub online: BTreeMap<u64, PartyCost>,
}

/// One per-layer row of the report.
#[derive(Debug, Clone, Default)]
pub struct LayerRow {
    /// Layer name (`conv0`, `abrelu1`, `fc3`, `input`, …).
    pub name: String,
    /// Ring width ℓ for the layer, when recorded (0 otherwise).
    pub ring_bits: u64,
    /// Output shape rendering, when recorded.
    pub shape: String,
    /// Per-party online cost.
    pub online: BTreeMap<u64, PartyCost>,
    /// Per-party offline (preprocessing) cost.
    pub offline: BTreeMap<u64, PartyCost>,
    /// Stage sub-rows in first-seen order.
    pub stages: Vec<StageRow>,
}

/// The aggregated cost report. Build with [`CostReport::from_spans`] or
/// [`CostReport::from_chrome`], render with [`CostReport::render`].
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Per-layer rows in first-seen order.
    pub rows: Vec<LayerRow>,
    /// Party ids present, ascending.
    pub parties: Vec<u64>,
}

/// Flattened view of one span, source-agnostic.
struct Item {
    pid: u64,
    name: String,
    cat: String,
    top: bool,
    layer: Option<String>,
    bytes: u64,
    rounds: u64,
    ms: f64,
    ring_bits: u64,
    shape: Option<String>,
}

fn span_item(pid: u64, span: &SpanRecord) -> Item {
    Item {
        pid,
        name: span.name.clone(),
        cat: span.cat.clone(),
        top: span.parent.is_none(),
        layer: span.arg(ARG_LAYER).and_then(|v| match v {
            ArgValue::Str(s) => Some(s.clone()),
            _ => None,
        }),
        bytes: span.arg_u64(ARG_BYTES_SENT) + span.arg_u64(ARG_BYTES_RECV),
        rounds: span.arg_u64(ARG_ROUNDS),
        #[allow(clippy::cast_precision_loss)]
        ms: span.dur_ns as f64 / 1e6,
        ring_bits: span.arg_u64(ARG_RING_BITS),
        shape: span.arg(ARG_SHAPE).and_then(|v| match v {
            ArgValue::Str(s) => Some(s.clone()),
            _ => None,
        }),
    }
}

fn chrome_item(ev: &ChromeEvent) -> Item {
    let str_arg = |key: &str| {
        ev.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.clone()),
            _ => None,
        })
    };
    Item {
        pid: ev.pid,
        name: ev.name.clone(),
        cat: ev.cat.clone(),
        top: ev.top,
        layer: str_arg(ARG_LAYER),
        bytes: ev.arg_u64(ARG_BYTES_SENT) + ev.arg_u64(ARG_BYTES_RECV),
        rounds: ev.arg_u64(ARG_ROUNDS),
        ms: ev.dur_us / 1e3,
        ring_bits: ev.arg_u64(ARG_RING_BITS),
        shape: str_arg(ARG_SHAPE),
    }
}

impl CostReport {
    /// Builds the report from live per-party span snapshots.
    #[must_use]
    pub fn from_spans(parties: &[(u32, &[SpanRecord])]) -> Self {
        Self::build(parties.iter().flat_map(|&(pid, spans)| {
            spans.iter().map(move |s| {
                let mut item = span_item(u64::from(pid), s);
                if item.layer.is_none() {
                    // Stage spans recorded deep in protocol code don't name
                    // their layer; the root ancestor in the span tree does.
                    let mut root = None;
                    let mut p = s.parent;
                    while let Some(i) = p {
                        root = Some(i);
                        p = spans.get(i).and_then(|s| s.parent);
                    }
                    item.layer = root.and_then(|i| spans.get(i)).map(|s| s.name.clone());
                }
                item
            })
        }))
    }

    /// Builds the report from a parsed Chrome trace.
    #[must_use]
    pub fn from_chrome(events: &[ChromeEvent]) -> Self {
        Self::build(events.iter().map(chrome_item))
    }

    fn row_mut<'a>(rows: &'a mut Vec<LayerRow>, name: &str) -> &'a mut LayerRow {
        if let Some(i) = rows.iter().position(|r| r.name == name) {
            &mut rows[i]
        } else {
            rows.push(LayerRow { name: name.to_owned(), ..LayerRow::default() });
            rows.last_mut().expect("just pushed")
        }
    }

    fn build(items: impl Iterator<Item = Item>) -> Self {
        let mut rows: Vec<LayerRow> = Vec::new();
        let mut parties: Vec<u64> = Vec::new();
        for item in items {
            if !parties.contains(&item.pid) {
                parties.push(item.pid);
            }
            if item.cat == CAT_STAGE {
                let Some(layer) = item.layer.as_deref() else { continue };
                let row = Self::row_mut(&mut rows, layer);
                let stage = if let Some(i) = row.stages.iter().position(|s| s.name == item.name) {
                    &mut row.stages[i]
                } else {
                    row.stages.push(StageRow { name: item.name.clone(), ..StageRow::default() });
                    row.stages.last_mut().expect("just pushed")
                };
                stage.online.entry(item.pid).or_default().absorb(item.bytes, item.rounds, item.ms);
                continue;
            }
            if !item.top {
                continue; // nested non-stage span: already counted by its root
            }
            let row = Self::row_mut(&mut rows, &item.name);
            if item.ring_bits != 0 {
                row.ring_bits = item.ring_bits;
            }
            if let Some(shape) = item.shape {
                row.shape = shape;
            }
            let bucket = if item.cat == CAT_OFFLINE { &mut row.offline } else { &mut row.online };
            bucket.entry(item.pid).or_default().absorb(item.bytes, item.rounds, item.ms);
        }
        parties.sort_unstable();
        CostReport { rows, parties }
    }

    fn sum(&self, pick: impl Fn(&LayerRow) -> Option<&PartyCost>) -> PartyCost {
        let mut total = PartyCost::default();
        for row in &self.rows {
            if let Some(c) = pick(row) {
                total.absorb(c.bytes, c.rounds, c.ms);
            }
        }
        total
    }

    /// Total online cost for a party (sum over top-level spans).
    #[must_use]
    pub fn online_total(&self, pid: u64) -> PartyCost {
        self.sum(|r| r.online.get(&pid))
    }

    /// Total offline cost for a party.
    #[must_use]
    pub fn offline_total(&self, pid: u64) -> PartyCost {
        self.sum(|r| r.offline.get(&pid))
    }

    /// Total channel bytes for a party, online + offline. By the span
    /// conventions this reconciles exactly with
    /// `ChannelStats::total_bytes()` on that party's endpoint.
    #[must_use]
    pub fn total_bytes(&self, pid: u64) -> u64 {
        self.online_total(pid).bytes + self.offline_total(pid).bytes
    }

    /// Renders the human cost table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .rows
            .iter()
            .flat_map(|r| {
                std::iter::once(r.name.len()).chain(r.stages.iter().map(|s| s.name.len() + 4))
            })
            .chain(std::iter::once("layer".len()))
            .max()
            .unwrap_or(8)
            .max(8);
        let shape_w = self
            .rows
            .iter()
            .map(|r| r.shape.len())
            .chain(std::iter::once("shape".len()))
            .max()
            .unwrap_or(5);

        // Header: one column group of four per party.
        let _ = write!(out, "{:name_w$}  {:>2}  {:shape_w$}", "layer", "ℓ", "shape");
        for &pid in &self.parties {
            let _ = write!(out, " │ {:^40}", format!("party {pid}"));
        }
        out.push('\n');
        let _ = write!(out, "{:name_w$}  {:>2}  {:shape_w$}", "", "", "");
        for _ in &self.parties {
            let _ = write!(
                out,
                " │ {:>10} {:>9} {:>7} {:>11}",
                "on MiB", "off MiB", "rounds", "ms(on/off)"
            );
        }
        out.push('\n');
        let rule_w = name_w + 4 + shape_w + self.parties.len() * 44;
        let _ = writeln!(out, "{}", "─".repeat(rule_w));

        let write_costs = |out: &mut String,
                           online: &BTreeMap<u64, PartyCost>,
                           offline: &BTreeMap<u64, PartyCost>,
                           parties: &[u64]| {
            for &pid in parties {
                let on = online.get(&pid).copied().unwrap_or_default();
                let off = offline.get(&pid).copied().unwrap_or_default();
                let _ = write!(
                    out,
                    " │ {:>10.3} {:>9.3} {:>7} {:>5.1}/{:>5.1}",
                    on.mib(),
                    off.mib(),
                    on.rounds + off.rounds,
                    on.ms,
                    off.ms
                );
            }
            out.push('\n');
        };

        for row in &self.rows {
            let ring =
                if row.ring_bits == 0 { String::from("–") } else { row.ring_bits.to_string() };
            let _ = write!(out, "{:name_w$}  {:>2}  {:shape_w$}", row.name, ring, row.shape);
            write_costs(&mut out, &row.online, &row.offline, &self.parties);
            for stage in &row.stages {
                let label = format!("  · {}", stage.name);
                let _ = write!(out, "{label:name_w$}  {:>2}  {:shape_w$}", "", "");
                write_costs(&mut out, &stage.online, &BTreeMap::new(), &self.parties);
            }
        }

        let _ = writeln!(out, "{}", "─".repeat(rule_w));
        let _ = write!(out, "{:name_w$}  {:>2}  {:shape_w$}", "total", "", "");
        let (online_tot, offline_tot): (BTreeMap<_, _>, BTreeMap<_, _>) = (
            self.parties.iter().map(|&p| (p, self.online_total(p))).collect(),
            self.parties.iter().map(|&p| (p, self.offline_total(p))).collect(),
        );
        write_costs(&mut out, &online_tot, &offline_tot, &self.parties);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{chrome_trace, parse_chrome_trace};
    use crate::json::Json;
    use crate::tracer::Tracer;

    fn traced_party() -> Vec<SpanRecord> {
        let t = Tracer::new();
        // Offline preprocessing for conv0.
        let prep = t.begin("conv0", CAT_OFFLINE);
        t.end_with(prep, &[(ARG_BYTES_SENT, 500u64.into()), (ARG_ROUNDS, 1u64.into())]);
        // Online conv0 with a gemm stage.
        let layer = t.begin_with(
            "conv0",
            CAT_LAYER,
            &[(ARG_RING_BITS, 16u64.into()), (ARG_SHAPE, "1x6x24x24".into())],
        );
        let gemm = t.begin_with("gemm", CAT_STAGE, &[(ARG_LAYER, "conv0".into())]);
        t.end_with(gemm, &[(ARG_BYTES_SENT, 700u64.into())]);
        t.end_with(
            layer,
            &[
                (ARG_BYTES_SENT, 1000u64.into()),
                (ARG_BYTES_RECV, 24u64.into()),
                (ARG_ROUNDS, 2u64.into()),
            ],
        );
        // A second top-level layer.
        let relu = t.begin_with("abrelu1", CAT_LAYER, &[(ARG_RING_BITS, 8u64.into())]);
        t.end_with(relu, &[(ARG_BYTES_RECV, 2048u64.into()), (ARG_ROUNDS, 3u64.into())]);
        t.snapshot()
    }

    #[test]
    fn rows_merge_online_and_offline_by_name() {
        let spans = traced_party();
        let report = CostReport::from_spans(&[(0, &spans)]);
        assert_eq!(report.rows.len(), 2);
        let conv = &report.rows[0];
        assert_eq!(conv.name, "conv0");
        assert_eq!(conv.ring_bits, 16);
        assert_eq!(conv.shape, "1x6x24x24");
        assert_eq!(conv.online[&0].bytes, 1024);
        assert_eq!(conv.online[&0].rounds, 2);
        assert_eq!(conv.offline[&0].bytes, 500);
        assert_eq!(conv.stages.len(), 1);
        assert_eq!(conv.stages[0].name, "gemm");
        assert_eq!(conv.stages[0].online[&0].bytes, 700);
    }

    #[test]
    fn totals_sum_only_top_level_spans() {
        let spans = traced_party();
        let report = CostReport::from_spans(&[(0, &spans)]);
        // gemm's 700 bytes are a subset of conv0's 1024 and must not be
        // double counted.
        assert_eq!(report.online_total(0).bytes, 1024 + 2048);
        assert_eq!(report.offline_total(0).bytes, 500);
        assert_eq!(report.total_bytes(0), 1024 + 2048 + 500);
        assert_eq!(report.online_total(0).rounds, 5);
    }

    #[test]
    fn chrome_rebuild_matches_live_report() {
        let spans = traced_party();
        let live = CostReport::from_spans(&[(0, &spans), (1, &spans)]);
        let doc = chrome_trace(&[(0, &spans), (1, &spans)]);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let events = parse_chrome_trace(&parsed).unwrap();
        let rebuilt = CostReport::from_chrome(&events);
        assert_eq!(rebuilt.parties, vec![0, 1]);
        assert_eq!(rebuilt.rows.len(), live.rows.len());
        let close = |a: &BTreeMap<u64, PartyCost>, b: &BTreeMap<u64, PartyCost>| {
            assert_eq!(a.len(), b.len());
            for (pid, x) in a {
                let y = &b[pid];
                assert_eq!(x.bytes, y.bytes);
                assert_eq!(x.rounds, y.rounds);
                // ns → µs → ms float round trip may wobble in the last ULP.
                assert!((x.ms - y.ms).abs() < 1e-6, "{} vs {}", x.ms, y.ms);
            }
        };
        for (a, b) in live.rows.iter().zip(&rebuilt.rows) {
            assert_eq!(a.name, b.name);
            close(&a.online, &b.online);
            close(&a.offline, &b.offline);
            assert_eq!(a.stages.len(), b.stages.len());
        }
        assert_eq!(rebuilt.total_bytes(1), live.total_bytes(1));
    }

    #[test]
    fn render_mentions_every_row_and_party() {
        let spans = traced_party();
        let report = CostReport::from_spans(&[(0, &spans), (1, &spans)]);
        let table = report.render();
        for needle in ["conv0", "abrelu1", "· gemm", "party 0", "party 1", "total", "1x6x24x24"] {
            assert!(table.contains(needle), "table missing {needle:?}:\n{table}");
        }
    }
}
