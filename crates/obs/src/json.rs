//! Minimal JSON document model, writer and parser.
//!
//! The workspace vendors a no-op `serde` shim (no registry access), so the
//! exporters carry their own small JSON layer: a [`Json`] value tree, an
//! escaping writer, and a recursive-descent parser. The parser exists so
//! emitted documents can be *read back* — `cargo xtask report` rebuilds
//! the cost table from `trace.json`/`metrics.json`, and the tests validate
//! every exporter by round-tripping its output.
//!
//! Object members preserve insertion order (a `Vec` of pairs, not a map):
//! Chrome's trace viewer and humans both read these files.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; exact for integers below 2⁵³ — byte
    /// counts and timestamps stay well under that).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered members).
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    #[allow(clippy::cast_precision_loss)] // counts stay below 2^53
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup on objects (`None` elsewhere).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` when numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer when it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items when the value is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte offset + message for the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Integers print without a decimal point (Chrome's viewer treats `ts`
/// either way, but byte counts read better bare).
fn write_number(out: &mut String, v: f64) {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{v:.0}");
    } else if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null"); // JSON has no Inf/NaN
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected byte at {}", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence beginning at c.
                let len = utf8_len(c);
                let seq_start = *pos - 1;
                let seq = bytes
                    .get(seq_start..seq_start + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or(format!("bad UTF-8 at byte {seq_start}"))?;
                out.push_str(seq);
                *pos = seq_start + len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::obj(vec![
            ("name", Json::from("conv0 \"quoted\" \\ path\nnewline")),
            ("ts", Json::from(12.5)),
            ("n", Json::from(123_456_789u64)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = Json::parse(&text).expect("parses");
            assert_eq!(back, doc, "text was: {text}");
        }
    }

    #[test]
    fn integers_print_bare() {
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
        assert_eq!(Json::from(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn unicode_and_control_chars() {
        let doc = Json::from("π ≈ 3.14159 — ℓ=16 \u{1}");
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parses_nested_documents() {
        let text = r#"{"traceEvents":[{"name":"x","args":{"b":1}}],"unit":"ms"}"#;
        let doc = Json::parse(text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(events[0].get("args").and_then(|a| a.get("b")).and_then(Json::as_u64), Some(1));
    }
}
