//! Protocol-wide observability for AQ2PNN: spans, metrics, exporters.
//!
//! This crate is the bottom of the workspace dependency graph (std only),
//! so transport, OT and core can all link it. It provides:
//!
//! - [`Tracer`] — nested, thread-safe spans with monotonic timestamps.
//!   Disabled tracers (the default) reduce every call to one branch.
//! - [`MetricsRegistry`] — named counters (lock-free handles), gauges and
//!   fixed-bucket histograms, exported as versioned `metrics.json`.
//! - [`chrome::chrome_trace`] — Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto, plus a parser for round-trips.
//! - [`report::CostReport`] — the paper-style per-layer cost table
//!   (MiB / rounds / ms, online vs offline, both parties side by side),
//!   built from span data alone so it reconstructs from `trace.json`.
//! - [`expo`] — Prometheus-style text exposition of a metrics snapshot
//!   (and its parser), served live by the server's admin endpoint.
//! - [`SloTracker`] — streaming latency histograms over fixed
//!   log-spaced buckets, with p50/p90/p99 gauges recomputed on scrape.
//! - [`FlightRecorder`] — a bounded per-session ring of recent events,
//!   dumped in Chrome trace format when a session faults.
//!
//! # Secrecy
//!
//! Telemetry may record **public structure only**: layer names and
//! shapes, ring widths, byte/round counts, batch sizes, timings, link
//! events. It must never record share values, wire payloads, comparison
//! codes, or anything else derived from secrets. The whole crate is
//! value-free by construction — nothing in it touches ring elements —
//! and it is covered by `cargo xtask lint --deny` like every protocol
//! crate. See DESIGN.md §10 for the full argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod expo;
pub mod flightrec;
pub mod json;
pub mod metrics;
pub mod report;
pub mod slo;
pub mod tracer;

pub use expo::{parse_text, render_text, text_schema_version};
pub use flightrec::{FlightRecord, FlightRecorder};
pub use metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, METRICS_SCHEMA_VERSION};
pub use slo::{quantile, SloClass, SloTracker, SLO_BUCKET_BOUNDS_MS};
pub use tracer::{ArgValue, LogSink, SpanId, SpanRecord, Tracer};
