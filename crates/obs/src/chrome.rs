//! Chrome `trace_event` export.
//!
//! Emits the JSON Object Format understood by `chrome://tracing` and
//! Perfetto: one `"X"` (complete) event per closed span, with `ts`/`dur`
//! in **microseconds**, `pid` = party id and `tid` = the recording thread
//! ordinal. Span arguments pass through under `args`; top-level spans
//! (no parent at record time) additionally carry `"top": 1` so tooling
//! (`cargo xtask report`) can rebuild the layer/stage structure without
//! time-containment heuristics.

use crate::json::Json;
use crate::tracer::{ArgValue, SpanRecord};

/// One event parsed back out of a Chrome trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Party id (process id in Chrome terms).
    pub pid: u64,
    /// Recording thread ordinal.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Start, microseconds since the party's epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Whether the span was top-level (parentless) when recorded.
    pub top: bool,
    /// Public arguments (the `"top"` marker is stripped back out).
    pub args: Vec<(String, ArgValue)>,
}

impl ChromeEvent {
    /// An argument as `u64` (0 when absent or non-numeric).
    #[must_use]
    pub fn arg_u64(&self, key: &str) -> u64 {
        self.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_u64()).unwrap_or(0)
    }
}

fn arg_to_json(v: &ArgValue) -> Json {
    match v {
        ArgValue::U64(v) => Json::from(*v),
        ArgValue::F64(v) => Json::from(*v),
        ArgValue::Str(s) => Json::from(s.as_str()),
    }
}

fn json_to_arg(v: &Json) -> Option<ArgValue> {
    match v {
        Json::Num(_) => v.as_u64().map(ArgValue::U64).or_else(|| v.as_f64().map(ArgValue::F64)),
        Json::Str(s) => Some(ArgValue::Str(s.clone())),
        _ => None,
    }
}

const NS_PER_US: f64 = 1000.0;

/// Builds the Chrome trace document from per-party span snapshots.
///
/// Open spans (`dur_ns == 0`) are emitted with zero duration — they still
/// show up as instant-like slivers rather than silently vanishing. Each
/// party also gets a `process_name` metadata event so the viewer labels
/// the two timelines "party 0" / "party 1".
#[must_use]
#[allow(clippy::cast_precision_loss)] // ns → µs floats; sub-µs precision kept via the division
pub fn chrome_trace(parties: &[(u32, &[SpanRecord])]) -> Json {
    let mut events = Vec::new();
    for &(pid, spans) in parties {
        events.push(Json::obj(vec![
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(u64::from(pid))),
            ("tid", Json::from(0u64)),
            ("args", Json::obj(vec![("name", Json::from(format!("party {pid}")))])),
        ]));
        for span in spans {
            let mut args: Vec<(String, Json)> = Vec::with_capacity(span.args.len() + 1);
            if span.parent.is_none() {
                args.push(("top".to_owned(), Json::from(1u64)));
            } else if span.arg("layer").is_none() {
                // Parent links don't survive the Chrome format; stamp the
                // root ancestor's name so the cost report can regroup
                // stage spans under their layer from trace.json alone.
                let mut root = None;
                let mut p = span.parent;
                while let Some(i) = p {
                    root = Some(i);
                    p = spans.get(i).and_then(|s| s.parent);
                }
                if let Some(name) = root.and_then(|i| spans.get(i)).map(|s| s.name.as_str()) {
                    args.push(("layer".to_owned(), Json::from(name)));
                }
            }
            for (k, v) in &span.args {
                args.push((k.clone(), arg_to_json(v)));
            }
            events.push(Json::obj(vec![
                ("name", Json::from(span.name.as_str())),
                ("cat", Json::from(span.cat.as_str())),
                ("ph", Json::from("X")),
                ("pid", Json::from(u64::from(pid))),
                ("tid", Json::from(span.tid)),
                ("ts", Json::from(span.start_ns as f64 / NS_PER_US)),
                ("dur", Json::from(span.dur_ns as f64 / NS_PER_US)),
                ("args", Json::Obj(args)),
            ]));
        }
    }
    Json::obj(vec![("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::from("ms"))])
}

/// Parses a document produced by [`chrome_trace`] back into events
/// (metadata events are skipped).
///
/// # Errors
///
/// Returns a description of the first event that is not schema-valid
/// (missing `name`/`ph`/`pid`/`tid`, or a non-numeric `ts`/`dur` on an
/// `"X"` event).
pub fn parse_chrome_trace(doc: &Json) -> Result<Vec<ChromeEvent>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace.json: missing traceEvents array")?;
    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing ph"))?;
        let pid = ev.get("pid").and_then(Json::as_u64).ok_or(format!("event {i}: missing pid"))?;
        let tid = ev.get("tid").and_then(Json::as_u64).ok_or(format!("event {i}: missing tid"))?;
        let name =
            ev.get("name").and_then(Json::as_str).ok_or(format!("event {i}: missing name"))?;
        if ph != "X" {
            continue; // metadata and other phases carry no span payload
        }
        let ts_us = ev.get("ts").and_then(Json::as_f64).ok_or(format!("event {i}: missing ts"))?;
        let dur_us =
            ev.get("dur").and_then(Json::as_f64).ok_or(format!("event {i}: missing dur"))?;
        let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("").to_owned();
        let mut top = false;
        let mut args = Vec::new();
        if let Some(Json::Obj(members)) = ev.get("args") {
            for (k, v) in members {
                if k == "top" {
                    top = v.as_u64() == Some(1);
                } else if let Some(arg) = json_to_arg(v) {
                    args.push((k.clone(), arg));
                }
            }
        }
        out.push(ChromeEvent { pid, tid, name: name.to_owned(), cat, ts_us, dur_us, top, args });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn sample_spans() -> Vec<SpanRecord> {
        let t = Tracer::new();
        let layer = t.begin_with("conv0", "layer", &[("ring_bits", 16u64.into())]);
        let gemm = t.begin("gemm", "stage");
        t.end_with(gemm, &[("bytes_sent", 4096u64.into())]);
        t.end_with(layer, &[("shape", "1x6x24x24".into())]);
        t.snapshot()
    }

    #[test]
    fn roundtrip_preserves_structure_and_args() {
        let spans = sample_spans();
        let doc = chrome_trace(&[(0, &spans), (1, &spans)]);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("emitted trace parses as JSON");
        let events = parse_chrome_trace(&parsed).expect("schema-valid");
        // Two parties × two spans; metadata events skipped.
        assert_eq!(events.len(), 4);
        let layer = events.iter().find(|e| e.pid == 0 && e.name == "conv0").unwrap();
        assert!(layer.top, "parentless span keeps its top marker");
        assert_eq!(layer.cat, "layer");
        assert_eq!(layer.arg_u64("ring_bits"), 16);
        assert!(layer
            .args
            .iter()
            .any(|(k, v)| k == "shape" && matches!(v, ArgValue::Str(s) if s == "1x6x24x24")));
        let gemm = events.iter().find(|e| e.pid == 0 && e.name == "gemm").unwrap();
        assert!(!gemm.top, "child span is not marked top");
        assert_eq!(gemm.arg_u64("bytes_sent"), 4096);
        // Child interval sits inside the parent interval (µs scale).
        assert!(gemm.ts_us >= layer.ts_us);
        assert!(gemm.ts_us + gemm.dur_us <= layer.ts_us + layer.dur_us + 1e-6);
    }

    #[test]
    fn schema_has_required_chrome_fields() {
        let spans = sample_spans();
        let doc = chrome_trace(&[(1, &spans)]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // First event is the process_name metadata record.
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        for ev in &events[1..] {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            for key in ["name", "cat", "pid", "tid", "ts", "dur", "args"] {
                assert!(ev.get(key).is_some(), "X event missing {key}");
            }
            assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
        }
    }

    #[test]
    fn rejects_malformed_events() {
        let doc = Json::obj(vec![(
            "traceEvents",
            Json::arr([Json::obj(vec![
                ("name", Json::from("x")),
                ("ph", Json::from("X")),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(1u64)),
                // ts missing
                ("dur", Json::from(1.0)),
            ])]),
        )]);
        assert!(parse_chrome_trace(&doc).unwrap_err().contains("missing ts"));
    }
}
