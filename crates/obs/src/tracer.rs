//! The span runtime: nested, monotonic, thread-safe trace recording.
//!
//! A [`Tracer`] records *spans* — named intervals with a category, public
//! key/value arguments, and monotonic start/duration timestamps. Spans nest
//! per thread: [`Tracer::begin`] pushes onto the calling thread's span
//! stack and [`Tracer::end`] pops it, so a span started while another is
//! open on the same thread records that span as its parent. Recording is a
//! short critical section on one mutex; a *disabled* tracer (the default
//! everywhere) reduces every call to one atomic load and is safe to leave
//! in protocol hot paths.
//!
//! Tracers are cheap to clone (`Arc` internals); clones share the same
//! span log, so one tracer can be handed to every module a party runs.
//!
//! Secrecy: spans may carry only **public structure** — layer names,
//! shapes, ring widths, byte/round counts, timings. Never share values,
//! sign flags, comparison codes or any other secret-derived data. See
//! DESIGN.md §10.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A public span/metric argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (byte counts, rounds, ring widths).
    U64(u64),
    /// Floating point (derived rates, mebibytes).
    F64(f64),
    /// Short public string (shape renderings, stage kinds).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl ArgValue {
    /// The value as `u64` when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            ArgValue::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (`conv0`, `gemm`, `a2bm`, …).
    pub name: String,
    /// Category: `layer`, `stage`, `offline`, or a caller-chosen label.
    pub cat: String,
    /// Recording thread (small dense ordinal, stable within a process).
    pub tid: u64,
    /// Index of the enclosing span in the snapshot, if any.
    pub parent: Option<usize>,
    /// Start, nanoseconds since the tracer's epoch (monotonic).
    pub start_ns: u64,
    /// Duration in nanoseconds (0 while still open).
    pub dur_ns: u64,
    /// Public key/value arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl SpanRecord {
    /// Looks up an argument by key.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An argument as `u64` (0 when absent or non-numeric).
    #[must_use]
    pub fn arg_u64(&self, key: &str) -> u64 {
        self.arg(key).and_then(ArgValue::as_u64).unwrap_or(0)
    }
}

/// Handle for an open span; returned by [`Tracer::begin`], consumed by
/// [`Tracer::end`]. The sentinel value stands for "tracer disabled,
/// nothing recorded".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    const NONE: SpanId = SpanId(usize::MAX);
}

/// Where the human log sink writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogSink {
    /// Timestamped lines on stderr (the default).
    #[default]
    Stderr,
    /// Drop all log lines (`--quiet`).
    Silent,
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// Per-thread stacks of open span indices (parent linkage).
    stacks: HashMap<u64, Vec<usize>>,
}

struct Inner {
    enabled: bool,
    epoch: Instant,
    st: Mutex<TraceState>,
    sink: Mutex<LogSink>,
}

/// The span recorder. See the [module docs](self).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .field("spans", &self.with_state(|st| st.spans.len()))
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

/// Dense per-thread ordinal: `ThreadId` is opaque, Chrome traces want a
/// small integer. First use on a thread claims the next ordinal.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORD: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORD.with(|o| *o)
}

impl Tracer {
    /// A recording tracer.
    #[must_use]
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: true,
                epoch: Instant::now(),
                st: Mutex::new(TraceState::default()),
                sink: Mutex::new(LogSink::default()),
            }),
        }
    }

    /// A tracer that records nothing; every span call is one branch.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: false,
                epoch: Instant::now(),
                st: Mutex::new(TraceState::default()),
                sink: Mutex::new(LogSink::default()),
            }),
        }
    }

    /// Whether this tracer records spans.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Runs `f` under the state lock. Scoping the guard to a closure keeps
    /// every critical section inside this function — nothing can hold the
    /// lock across a call boundary or a blocking operation.
    fn with_state<R>(&self, f: impl FnOnce(&mut TraceState) -> R) -> R {
        let mut st = self.inner.st.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut st)
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span. Returns a handle to pass to [`Tracer::end`].
    pub fn begin(&self, name: impl Into<String>, cat: &str) -> SpanId {
        self.begin_with(name, cat, &[])
    }

    /// Opens a span carrying initial arguments.
    pub fn begin_with(
        &self,
        name: impl Into<String>,
        cat: &str,
        args: &[(&str, ArgValue)],
    ) -> SpanId {
        if !self.inner.enabled {
            return SpanId::NONE;
        }
        let start_ns = self.now_ns();
        let tid = thread_ordinal();
        let name = name.into();
        self.with_state(|st| {
            let idx = st.spans.len();
            let parent = st.stacks.get(&tid).and_then(|s| s.last().copied());
            st.spans.push(SpanRecord {
                name,
                cat: cat.to_owned(),
                tid,
                parent,
                start_ns,
                dur_ns: 0,
                args: args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
            });
            st.stacks.entry(tid).or_default().push(idx);
            SpanId(idx)
        })
    }

    /// Closes a span.
    pub fn end(&self, id: SpanId) {
        self.end_with(id, &[]);
    }

    /// Closes a span, appending final arguments (e.g. byte deltas measured
    /// across the span).
    pub fn end_with(&self, id: SpanId, args: &[(&str, ArgValue)]) {
        if id == SpanId::NONE || !self.inner.enabled {
            return;
        }
        let end_ns = self.now_ns();
        let tid = thread_ordinal();
        self.with_state(|st| {
            if let Some(stack) = st.stacks.get_mut(&tid) {
                // Pop through to this span: ends of enclosing spans implicitly
                // close any children left open (mirrors Chrome's semantics).
                while let Some(top) = stack.pop() {
                    if top == id.0 {
                        break;
                    }
                }
            }
            if let Some(span) = st.spans.get_mut(id.0) {
                span.dur_ns = end_ns.saturating_sub(span.start_ns);
                span.args.extend(args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())));
            }
        });
    }

    /// Records a complete span in one call (for already-measured work).
    pub fn record(
        &self,
        name: impl Into<String>,
        cat: &str,
        start_ns: u64,
        dur_ns: u64,
        args: &[(&str, ArgValue)],
    ) {
        if !self.inner.enabled {
            return;
        }
        let tid = thread_ordinal();
        let name = name.into();
        self.with_state(|st| {
            let parent = st.stacks.get(&tid).and_then(|s| s.last().copied());
            st.spans.push(SpanRecord {
                name,
                cat: cat.to_owned(),
                tid,
                parent,
                start_ns,
                dur_ns,
                args: args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
            });
        });
    }

    /// Snapshot of every span recorded so far (open spans have
    /// `dur_ns == 0`), in begin order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.with_state(|st| st.spans.clone())
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.with_state(|st| st.spans.len())
    }

    // --- human log sink -------------------------------------------------

    /// Redirects (or silences) the human log sink.
    pub fn set_log_sink(&self, sink: LogSink) {
        *self.inner.sink.lock().unwrap_or_else(PoisonError::into_inner) = sink;
    }

    /// Writes one progress line through the log sink with a monotonic
    /// `[t+…s]` prefix. Works on disabled tracers too — logging is
    /// orthogonal to span recording.
    pub fn info(&self, msg: impl AsRef<str>) {
        let sink = *self.inner.sink.lock().unwrap_or_else(PoisonError::into_inner);
        if sink == LogSink::Silent {
            return;
        }
        let t = self.inner.epoch.elapsed().as_secs_f64();
        eprintln!("[t+{t:8.3}s] {}", msg.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        let id = t.begin("x", "layer");
        t.end(id);
        assert_eq!(t.span_count(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn nesting_on_one_thread() {
        let t = Tracer::new();
        let outer = t.begin("outer", "layer");
        let inner = t.begin_with("inner", "stage", &[("ring_bits", 16u64.into())]);
        t.end_with(inner, &[("bytes_sent", 100u64.into())]);
        let sibling = t.begin("sibling", "stage");
        t.end(sibling);
        t.end(outer);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0), "inner nests under outer");
        assert_eq!(spans[2].parent, Some(0), "sibling nests under outer");
        assert_eq!(spans[1].arg_u64("ring_bits"), 16);
        assert_eq!(spans[1].arg_u64("bytes_sent"), 100, "end args appended");
        // Ordering: children start at or after the parent, end before its end.
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(
            spans[1].start_ns + spans[1].dur_ns <= spans[0].start_ns + spans[0].dur_ns,
            "child interval must sit inside the parent interval"
        );
        assert!(spans[2].start_ns >= spans[1].start_ns + spans[1].dur_ns);
    }

    #[test]
    fn nesting_under_four_threads() {
        let t = Tracer::new();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let t = t.clone();
                scope.spawn(move || {
                    let outer = t.begin_with(format!("w{worker}"), "layer", &[]);
                    for j in 0..3 {
                        let s = t.begin(format!("w{worker}.s{j}"), "stage");
                        t.end(s);
                    }
                    t.end(outer);
                });
            }
        });
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4 * 4);
        // Per thread: one root, three children of that root, in begin order.
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "four distinct thread ordinals");
        for &tid in &tids {
            let mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.tid == tid).collect();
            assert_eq!(mine.len(), 4);
            let root = mine.iter().find(|s| s.cat == "layer").expect("one root per thread");
            assert_eq!(root.parent, None);
            let root_idx = spans.iter().position(|s| std::ptr::eq(s, *root)).unwrap();
            let mut last_start = root.start_ns;
            for child in mine.iter().filter(|s| s.cat == "stage") {
                assert_eq!(child.parent, Some(root_idx), "stage nests under its thread's root");
                assert!(child.start_ns >= last_start, "children recorded in begin order");
                last_start = child.start_ns;
            }
        }
    }

    #[test]
    fn end_closes_dangling_children() {
        let t = Tracer::new();
        let outer = t.begin("outer", "layer");
        let _leaked = t.begin("leaked", "stage");
        t.end(outer); // must pop the leaked child from the stack too
        let after = t.begin("after", "layer");
        t.end(after);
        let spans = t.snapshot();
        assert_eq!(spans[2].parent, None, "stack unwound past the leaked child");
    }

    #[test]
    fn record_is_flat_and_timestamped() {
        let t = Tracer::new();
        t.record("external", "io", 5, 17, &[("n", 3u64.into())]);
        let spans = t.snapshot();
        assert_eq!(spans[0].start_ns, 5);
        assert_eq!(spans[0].dur_ns, 17);
        assert_eq!(spans[0].arg_u64("n"), 3);
    }

    #[test]
    fn monotonic_timestamps() {
        let t = Tracer::new();
        let a = t.begin("a", "layer");
        t.end(a);
        let b = t.begin("b", "layer");
        t.end(b);
        let spans = t.snapshot();
        assert!(spans[1].start_ns >= spans[0].start_ns + spans[0].dur_ns);
    }
}
