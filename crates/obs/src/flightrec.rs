//! Per-session flight recorder: a fixed-size ring of recent events.
//!
//! Every admitted server session gets one. Workers append short
//! span/event records as the session progresses; the ring holds only the
//! most recent `capacity` records (older ones are counted, then
//! overwritten), so memory per session is bounded no matter how long a
//! session lives. On clean completion the recorder is simply dropped; on
//! a fault, reap or shed the server dumps it as
//! `flightrec-<stream>.json` in Chrome `trace_event` format
//! ([`FlightRecorder::to_chrome_json`]) so the session's final moments
//! are debuggable after the fact.
//!
//! Like the rest of this crate the recorder is value-free: records carry
//! public structure only (lifecycle names, shapes, counts, timings) —
//! never share values or wire payloads. Concurrency follows the crate's
//! lint-clean idiom: one leaf `Mutex` whose guard is scoped to a closure
//! ([`FlightRecorder::with_ring`]), so nothing blocks while holding it.

use crate::json::Json;
use crate::tracer::ArgValue;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One recorded event. `start_ns` is relative to the recorder's epoch
/// (session admission); instant events have `dur_ns == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Event name (e.g. `admitted`, `online_pass`, `reaped`).
    pub name: String,
    /// Category (e.g. `lifecycle`, `slo`).
    pub cat: String,
    /// Public structured arguments.
    pub args: Vec<(String, ArgValue)>,
}

struct Ring {
    buf: VecDeque<FlightRecord>,
    dropped: u64,
}

struct RecorderInner {
    enabled: bool,
    capacity: usize,
    epoch: Instant,
    ring: Mutex<Ring>,
}

/// The recorder handle. Cheap to clone; clones share the ring.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.inner.enabled)
            .field("capacity", &self.inner.capacity)
            .field("len", &self.with_ring(|r| r.buf.len()))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::disabled()
    }
}

impl FlightRecorder {
    /// A recording ring holding at most `capacity` records (clamped to
    /// at least 1). The full backing store is allocated up front so
    /// recording never grows the buffer.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                enabled: true,
                capacity,
                epoch: Instant::now(),
                ring: Mutex::new(Ring { buf: VecDeque::with_capacity(capacity), dropped: 0 }),
            }),
        }
    }

    /// A recorder that records nothing; every call is one branch.
    #[must_use]
    pub fn disabled() -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                enabled: false,
                capacity: 0,
                epoch: Instant::now(),
                ring: Mutex::new(Ring { buf: VecDeque::new(), dropped: 0 }),
            }),
        }
    }

    /// Whether this recorder records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Maximum number of retained records.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Runs `f` under the ring lock; the guard cannot escape the closure
    /// or be held across a blocking call.
    fn with_ring<R>(&self, f: impl FnOnce(&mut Ring) -> R) -> R {
        let mut st = self.inner.ring.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut st)
    }

    /// Nanoseconds since the recorder epoch — pair with [`Self::span`]
    /// to record a timed interval.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // u64 ns ≈ 584 years
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, rec: FlightRecord) {
        self.with_ring(|r| {
            if r.buf.len() == self.inner.capacity {
                r.buf.pop_front();
                r.dropped = r.dropped.saturating_add(1);
            }
            r.buf.push_back(rec);
        });
    }

    /// Records an instant event stamped now.
    pub fn event(&self, name: &str, cat: &str, args: &[(&str, ArgValue)]) {
        if !self.inner.enabled {
            return;
        }
        let start_ns = self.now_ns();
        self.push(FlightRecord {
            start_ns,
            dur_ns: 0,
            name: name.to_owned(),
            cat: cat.to_owned(),
            args: args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        });
    }

    /// Records a span that began at `start_ns` (from [`Self::now_ns`])
    /// and ends now.
    pub fn span(&self, name: &str, cat: &str, start_ns: u64, args: &[(&str, ArgValue)]) {
        if !self.inner.enabled {
            return;
        }
        let dur_ns = self.now_ns().saturating_sub(start_ns);
        self.push(FlightRecord {
            start_ns,
            dur_ns,
            name: name.to_owned(),
            cat: cat.to_owned(),
            args: args.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
        });
    }

    /// The retained records (oldest first) and how many older records
    /// the ring has overwritten.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<FlightRecord>, u64) {
        if !self.inner.enabled {
            return (Vec::new(), 0);
        }
        self.with_ring(|r| (r.buf.iter().cloned().collect(), r.dropped))
    }

    /// Renders the ring as a Chrome `trace_event` document (`pid` =
    /// stream id), parseable by [`crate::chrome::parse_chrome_trace`].
    /// Top-level extras `flightrec`, `stream` and `dropped` let tooling
    /// tell a flight-recorder dump from an ordinary trace.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // ns → µs floats
    pub fn to_chrome_json(&self, stream: u64) -> Json {
        let (records, dropped) = self.snapshot();
        let mut events = Vec::with_capacity(records.len() + 1);
        events.push(Json::obj(vec![
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(stream)),
            ("tid", Json::from(0u64)),
            ("args", Json::obj(vec![("name", Json::from(format!("session {stream}")))])),
        ]));
        for rec in &records {
            let args: Vec<(String, Json)> = rec
                .args
                .iter()
                .map(|(k, v)| {
                    let j = match v {
                        ArgValue::U64(n) => Json::from(*n),
                        ArgValue::F64(n) => Json::from(*n),
                        ArgValue::Str(s) => Json::from(s.as_str()),
                    };
                    (k.clone(), j)
                })
                .collect();
            events.push(Json::obj(vec![
                ("name", Json::from(rec.name.as_str())),
                ("cat", Json::from(rec.cat.as_str())),
                ("ph", Json::from("X")),
                ("pid", Json::from(stream)),
                ("tid", Json::from(0u64)),
                ("ts", Json::from(rec.start_ns as f64 / 1000.0)),
                ("dur", Json::from(rec.dur_ns as f64 / 1000.0)),
                ("args", Json::Obj(args)),
            ]));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
            ("flightrec", Json::from(1u64)),
            ("stream", Json::from(stream)),
            ("dropped", Json::from(dropped)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::parse_chrome_trace;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.event("tick", "test", &[("i", ArgValue::U64(i))]);
        }
        let (records, dropped) = rec.snapshot();
        assert_eq!(records.len(), 3, "ring retains only capacity records");
        assert_eq!(dropped, 2);
        // Oldest records were the ones overwritten.
        let kept: Vec<u64> =
            records.iter().map(|r| r.args[0].1.as_u64().unwrap_or(u64::MAX)).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        // Timestamps are monotone.
        assert!(records.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn spans_measure_elapsed_time() {
        let rec = FlightRecorder::new(8);
        let t0 = rec.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.span("work", "test", t0, &[]);
        let (records, _) = rec.snapshot();
        assert!(records[0].dur_ns >= 1_000_000, "span covers the sleep");
    }

    #[test]
    fn dump_is_chrome_trace_compatible() {
        let rec = FlightRecorder::new(8);
        rec.event("admitted", "lifecycle", &[("model", ArgValue::Str("tiny".into()))]);
        let t0 = rec.now_ns();
        rec.span("online_pass", "slo", t0, &[("batch", ArgValue::U64(4))]);
        let doc = rec.to_chrome_json(7);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("dump parses as JSON");
        assert_eq!(parsed.get("flightrec").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("stream").and_then(Json::as_u64), Some(7));
        let events = parse_chrome_trace(&parsed).expect("chrome-trace compatible");
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.pid == 7));
        let pass = events.iter().find(|e| e.name == "online_pass").unwrap();
        assert_eq!(pass.arg_u64("batch"), 4);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        rec.event("x", "y", &[]);
        rec.span("x", "y", 0, &[]);
        assert_eq!(rec.snapshot().0.len(), 0);
    }
}
