//! The metrics registry: named counters, gauges and histograms.
//!
//! Metric names are **stable and versioned** (see
//! [`METRICS_SCHEMA_VERSION`] and DESIGN.md §10.2): dashboards and CI
//! regression gates key on them, so renaming one is a breaking change.
//!
//! Counters hand out [`Counter`] handles backed by a shared atomic, so hot
//! paths increment without taking the registry lock; gauges and histogram
//! observations take a short critical section. A *disabled* registry (the
//! default everywhere) registers nothing and exports nothing — handles it
//! hands out still count, they are simply never read.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Version of the metric-name schema emitted in `metrics.json`.
///
/// * v1 — session/transport/OT counters and gauges.
/// * v2 — adds the batched-service family: `dealer.hits`,
///   `dealer.misses`, `dealer.generated`, `dealer.queue_depth.{layer}`
///   gauges, and the `dealer.take_batch` / `engine.batch_size`
///   histograms. Purely additive; v1 documents still parse.
/// * v3 — adds the multi-tenant server family: the
///   `server.sessions_{admitted,shed,reaped,rejected,faulted,completed}`
///   counters, the `server.sessions_active` and `server.drain_ms` gauges,
///   and the per-stream reliability counters
///   `session.<stream>.{acks_sent,naks_sent,retransmits,duplicates,corrupt_frames,misrouted,reconnects}`
///   (stream `0` keeps the unprefixed v1 `session.*` names). Purely
///   additive; v1 and v2 documents still parse.
/// * v4 — adds the live-telemetry family: the `server.inflight` gauge
///   (admitted-and-not-yet-finished sessions, mirrors
///   `server.sessions_active`), the `server.queue_wait_ms` histogram
///   (admission-to-run-slot wait), the `dealer.starved_ms` counter
///   (wall-clock ms spent generating triples inline on a dealer miss),
///   the SLO latency histograms
///   `server.slo.{admission,online,e2e}_ms` with their
///   `server.slo.{admission,online,e2e}.p{50,90,99}` gauges (recomputed
///   on scrape), and the `server.slo_violations` counter (`--slo-ms`
///   budget overruns). Purely additive; v1–v3 documents still parse.
pub const METRICS_SCHEMA_VERSION: u64 = 4;

/// A counter handle: increments are one relaxed atomic add. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v` to the counter, saturating at `u64::MAX` instead of
    /// wrapping (a wrapped counter reads as a reset to a dashboard).
    pub fn add(&self, v: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c.saturating_add(v)));
    }

    /// Subtracts `v` from the counter, clamping at zero instead of
    /// wrapping — a double-decrement bug in teardown attribution must
    /// not turn into a ~2^64 reading.
    pub fn sub(&self, v: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c.saturating_sub(v)));
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Bucket `i` counts observations
/// `v <= bounds[i]` (and above all bounds, the overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending upper bounds; an implicit `+inf` bucket follows.
    pub bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket
    /// (`counts.len() == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly ascending");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    /// Exponential bounds `start, start·factor, …` (`n` bounds total) —
    /// the default shape for byte and batch-size distributions.
    ///
    /// # Panics
    ///
    /// Panics if `start <= 0`, `factor <= 1`, or `n == 0`.
    #[must_use]
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "degenerate exponential bounds");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Records one observation. The chosen bucket is the first bound
    /// `>= v`; values above every bound land in the overflow bucket.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }
}

/// A point-in-time snapshot of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the `metrics.json` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect::<Vec<_>>();
        let gauges =
            self.gauges.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::obj(vec![
                        ("bounds", Json::arr(h.bounds.iter().map(|&b| Json::from(b)))),
                        ("counts", Json::arr(h.counts.iter().map(|&c| Json::from(c)))),
                        ("sum", Json::from(h.sum)),
                        ("count", Json::from(h.count)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("metrics_version", Json::from(METRICS_SCHEMA_VERSION)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }

    /// Parses a `metrics.json` document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let version = doc
            .get("metrics_version")
            .and_then(Json::as_u64)
            .ok_or("metrics.json: missing metrics_version")?;
        // Every schema bump so far is additive, so any version up to the
        // current one parses with the same structure.
        if version == 0 || version > METRICS_SCHEMA_VERSION {
            return Err(format!("metrics.json: unsupported schema version {version}"));
        }
        let mut snap = MetricsSnapshot::default();
        if let Some(Json::Obj(entries)) = doc.get("counters") {
            for (k, v) in entries {
                snap.counters
                    .insert(k.clone(), v.as_u64().ok_or(format!("counter {k} not a u64"))?);
            }
        }
        if let Some(Json::Obj(entries)) = doc.get("gauges") {
            for (k, v) in entries {
                snap.gauges.insert(k.clone(), v.as_f64().ok_or(format!("gauge {k} not a number"))?);
            }
        }
        if let Some(Json::Obj(entries)) = doc.get("histograms") {
            for (k, h) in entries {
                let nums = |key: &str| -> Result<Vec<f64>, String> {
                    match h.get(key) {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(|j| j.as_f64().ok_or(format!("histogram {k}.{key}: non-number")))
                            .collect(),
                        _ => Err(format!("histogram {k}: missing {key}")),
                    }
                };
                let bounds = nums("bounds")?;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let counts: Vec<u64> = nums("counts")?.iter().map(|&c| c as u64).collect();
                if counts.len() != bounds.len() + 1 {
                    return Err(format!("histogram {k}: counts/bounds length mismatch"));
                }
                snap.histograms.insert(
                    k.clone(),
                    Histogram {
                        bounds,
                        counts,
                        sum: h.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                        count: h.get("count").and_then(Json::as_u64).unwrap_or(0),
                    },
                );
            }
        }
        Ok(snap)
    }
}

enum Slot {
    Counter(Counter),
    Gauge(f64),
    Histogram(Histogram),
}

struct RegistryInner {
    enabled: bool,
    st: Mutex<BTreeMap<String, Slot>>,
}

/// The metric store. Cheap to clone (`Arc` internals); clones share state.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.inner.enabled)
            .field("metrics", &self.with_map(|st| st.len()))
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::disabled()
    }
}

impl MetricsRegistry {
    /// A recording registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner { enabled: true, st: Mutex::new(BTreeMap::new()) }),
        }
    }

    /// A registry that registers and exports nothing. Handles it hands out
    /// still count locally (they are never read), so instrumented code
    /// needs no branches.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner { enabled: false, st: Mutex::new(BTreeMap::new()) }),
        }
    }

    /// Whether this registry records metrics.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Runs `f` under the registry lock. Scoping the guard to a closure
    /// keeps every critical section inside this function — nothing can
    /// hold the lock across a call boundary or a blocking operation.
    fn with_map<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Slot>) -> R) -> R {
        let mut st = self.inner.st.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut st)
    }

    /// Registers (or retrieves) the counter `name` and returns its handle.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if !self.inner.enabled {
            return Counter::default();
        }
        self.with_map(|st| {
            match st.entry(name.to_owned()).or_insert_with(|| Slot::Counter(Counter::default())) {
                Slot::Counter(c) => c.clone(),
                _ => Counter::default(), // name collision with another kind: orphan handle
            }
        })
    }

    /// One-shot counter add (registers on first use).
    pub fn add(&self, name: &str, v: u64) {
        if self.inner.enabled {
            self.counter(name).add(v);
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if !self.inner.enabled {
            return;
        }
        self.with_map(|st| st.insert(name.to_owned(), Slot::Gauge(v)));
    }

    /// Adds `delta` (which may be negative) to the gauge `name`,
    /// clamping the result at zero. Every gauge in the schema is an
    /// occupancy or a duration, so a negative reading is always a
    /// double-decrement bug — clamp it instead of exporting a negative
    /// (or, for consumers that cast to unsigned, wrapped) value.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if !self.inner.enabled {
            return;
        }
        self.with_map(|st| {
            let cur = match st.get(name) {
                Some(Slot::Gauge(v)) => *v,
                _ => 0.0,
            };
            st.insert(name.to_owned(), Slot::Gauge((cur + delta).max(0.0)));
        });
    }

    /// Observes `v` into the histogram `name`, creating it with the given
    /// bounds on first use (later calls ignore `bounds`).
    pub fn observe_with(&self, name: &str, bounds: &Histogram, v: f64) {
        if !self.inner.enabled {
            return;
        }
        self.with_map(|st| {
            let slot = st.entry(name.to_owned()).or_insert_with(|| Slot::Histogram(bounds.clone()));
            if let Slot::Histogram(h) = slot {
                h.observe(v);
            }
        });
    }

    /// Observes `v` into the histogram `name` with the default exponential
    /// bounds (1, 4, 16, … — 16 powers of 4).
    pub fn observe(&self, name: &str, v: f64) {
        if !self.inner.enabled {
            return;
        }
        self.observe_with(name, &Histogram::exponential(1.0, 4.0, 16), v);
    }

    /// Snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with_map(|st| {
            let mut snap = MetricsSnapshot::default();
            for (name, slot) in st.iter() {
                match slot {
                    Slot::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Slot::Gauge(v) => {
                        snap.gauges.insert(name.clone(), *v);
                    }
                    Slot::Histogram(h) => {
                        snap.histograms.insert(name.clone(), h.clone());
                    }
                }
            }
            snap
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let m = MetricsRegistry::new();
        let a = m.counter("x.hits");
        let b = m.counter("x.hits");
        a.add(3);
        b.inc();
        assert_eq!(m.snapshot().counters["x.hits"], 4);
    }

    #[test]
    fn counter_sub_clamps_at_zero() {
        let m = MetricsRegistry::new();
        let c = m.counter("server.teardowns");
        c.add(2);
        c.sub(1);
        assert_eq!(c.get(), 1);
        // The double-decrement bug: clamps at 0 instead of wrapping to
        // ~2^64.
        c.sub(5);
        assert_eq!(c.get(), 0);
        c.sub(1);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_add_saturates_at_max() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_decrement_below_zero_clamps() {
        let m = MetricsRegistry::new();
        m.gauge_add("server.inflight", 2.0);
        m.gauge_add("server.inflight", -1.0);
        assert!((m.snapshot().gauges["server.inflight"] - 1.0).abs() < f64::EPSILON);
        // Decrementing past zero clamps instead of going negative.
        m.gauge_add("server.inflight", -3.0);
        assert!(m.snapshot().gauges["server.inflight"].abs() < f64::EPSILON);
        // A never-set gauge starts from zero.
        m.gauge_add("server.queue", -1.0);
        assert!(m.snapshot().gauges["server.queue"].abs() < f64::EPSILON);
    }

    #[test]
    fn disabled_registry_exports_nothing() {
        let m = MetricsRegistry::disabled();
        let c = m.counter("ghost");
        c.add(99);
        m.add("ghost2", 1);
        m.gauge_set("g", 1.0);
        m.observe("h", 2.0);
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        // On-boundary values land in the bucket whose bound they equal
        // (bucket counts v <= bound).
        h.observe(1.0);
        h.observe(0.5);
        assert_eq!(h.counts, vec![2, 0, 0, 0]);
        // Just above a bound rolls into the next bucket.
        h.observe(1.0001);
        h.observe(10.0);
        assert_eq!(h.counts, vec![2, 2, 0, 0]);
        // Above every bound: the overflow bucket.
        h.observe(1e9);
        assert_eq!(h.counts, vec![2, 2, 0, 1]);
        assert_eq!(h.count, 5);
        assert!((h.sum - (1.0 + 0.5 + 1.0001 + 10.0 + 1e9)).abs() < 1e-3);
    }

    #[test]
    fn exponential_bounds_shape() {
        let h = Histogram::exponential(1.0, 2.0, 5);
        assert_eq!(h.bounds, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(h.counts.len(), 6);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn non_ascending_bounds_rejected() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let m = MetricsRegistry::new();
        m.add("session.retransmits", 7);
        m.gauge_set("tcp.wire_tx_bytes", 1234.0);
        m.observe_with("ot.batch_slots", &Histogram::exponential(1.0, 4.0, 8), 20.0);
        let snap = m.snapshot();
        let doc = snap.to_json();
        let text = doc.to_string_pretty();
        let parsed = crate::json::Json::parse(&text).expect("emitted JSON parses");
        let back = MetricsSnapshot::from_json(&parsed).expect("schema matches");
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
    }

    #[test]
    fn older_schema_versions_still_parse() {
        let v1 = r#"{"metrics_version": 1, "counters": {"session.retransmits": 7}}"#;
        let doc = crate::json::Json::parse(v1).unwrap();
        let snap = MetricsSnapshot::from_json(&doc).expect("v1 is forward-parseable");
        assert_eq!(snap.counters["session.retransmits"], 7);
        // A v2 document (dealer family) parses under the v3 schema too.
        let v2 = r#"{"metrics_version": 2,
                     "counters": {"dealer.hits": 3, "dealer.misses": 1},
                     "gauges": {"dealer.queue_depth.conv1": 8.0}}"#;
        let doc = crate::json::Json::parse(v2).unwrap();
        let snap = MetricsSnapshot::from_json(&doc).expect("v2 is forward-parseable");
        assert_eq!(snap.counters["dealer.hits"], 3);
        assert!((snap.gauges["dealer.queue_depth.conv1"] - 8.0).abs() < f64::EPSILON);
        // A v3 document (multi-tenant server family) parses under v4.
        let v3 = r#"{"metrics_version": 3,
                     "counters": {"server.sessions_admitted": 5, "server.sessions_reaped": 1,
                                  "session.7.retransmits": 2},
                     "gauges": {"server.sessions_active": 2.0, "server.drain_ms": 12.5}}"#;
        let doc = crate::json::Json::parse(v3).unwrap();
        let snap = MetricsSnapshot::from_json(&doc).expect("v3 is forward-parseable");
        assert_eq!(snap.counters["server.sessions_admitted"], 5);
        assert_eq!(snap.counters["session.7.retransmits"], 2);
        // A v4 document (live-telemetry family) parses — the committed
        // fixture for the current schema, covering each new metric kind.
        let v4 = r#"{"metrics_version": 4,
                     "counters": {"dealer.starved_ms": 17, "server.slo_violations": 1},
                     "gauges": {"server.inflight": 3.0, "server.slo.e2e.p99": 41.5},
                     "histograms": {"server.queue_wait_ms":
                       {"bounds": [0.25, 0.5, 1.0], "counts": [4, 1, 0, 2],
                        "sum": 9.75, "count": 7}}}"#;
        let doc = crate::json::Json::parse(v4).unwrap();
        let snap = MetricsSnapshot::from_json(&doc).expect("v4 parses");
        assert_eq!(snap.counters["dealer.starved_ms"], 17);
        assert_eq!(snap.counters["server.slo_violations"], 1);
        assert!((snap.gauges["server.slo.e2e.p99"] - 41.5).abs() < f64::EPSILON);
        assert_eq!(snap.histograms["server.queue_wait_ms"].counts, vec![4, 1, 0, 2]);
        assert_eq!(snap.histograms["server.queue_wait_ms"].count, 7);
        let v9 = r#"{"metrics_version": 9, "counters": {}}"#;
        let doc = crate::json::Json::parse(v9).unwrap();
        assert!(MetricsSnapshot::from_json(&doc).is_err());
        let v0 = r#"{"metrics_version": 0, "counters": {}}"#;
        let doc = crate::json::Json::parse(v0).unwrap();
        assert!(MetricsSnapshot::from_json(&doc).is_err());
    }
}
