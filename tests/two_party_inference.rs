//! End-to-end integration tests: the full 2PC inference engine against the
//! plaintext quantized reference, across operator mixes, protocol modes
//! and ring widths, plus compiler-vs-measured communication consistency.

use aq2pnn::instq;
use aq2pnn::sim::run_two_party;
use aq2pnn::{ProtocolConfig, ReluMode, ReluRounds};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_nn::zoo;

fn trained_model(spec: &aq2pnn_nn::spec::ModelSpec, seed: u64) -> (QuantModel, SyntheticVision) {
    let data = SyntheticVision::tiny(4, seed);
    let mut net = FloatNet::init(spec, seed + 1).expect("valid spec");
    net.train_epochs(&data, 2, 8, 0.05);
    let q = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())
        .expect("quantization succeeds");
    (q, data)
}

/// Exact share-conversion mode must reproduce the plaintext ring reference
/// bit for bit — convolutions, BNReQ, ABReLU, max pooling and all.
#[test]
fn exact_mode_is_bit_exact_tiny_cnn() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 100);
    let cfg = ProtocolConfig::exact(16);
    for s in data.test().iter().take(4) {
        let secure = run_two_party(&model, &cfg, &s.image, 0).expect("2pc runs");
        let reference =
            model.forward_ring_exact(&s.image, cfg.q1_bits, cfg.q2_bits).expect("reference runs");
        assert_eq!(secure.logits, reference, "exact 2PC must match the ring reference");
    }
}

/// Same bit-exactness through residual blocks, BatchNorm folding and
/// global average pooling.
#[test]
fn exact_mode_is_bit_exact_tiny_resnet() {
    let (model, data) = trained_model(&zoo::tiny_resnet(4), 200);
    let cfg = ProtocolConfig::exact(16);
    for s in data.test().iter().take(3) {
        let secure = run_two_party(&model, &cfg, &s.image, 0).expect("2pc runs");
        let reference =
            model.forward_ring_exact(&s.image, cfg.q1_bits, cfg.q2_bits).expect("reference runs");
        assert_eq!(secure.logits, reference);
    }
}

/// The masked-MUX ReLU variant computes the same function.
#[test]
fn masked_mux_mode_is_bit_exact() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 300);
    let mut cfg = ProtocolConfig::exact(16);
    cfg.relu_mode = ReluMode::MaskedMux;
    let s = &data.test()[0];
    let secure = run_two_party(&model, &cfg, &s.image, 0).expect("2pc runs");
    let reference =
        model.forward_ring_exact(&s.image, cfg.q1_bits, cfg.q2_bits).expect("reference");
    assert_eq!(secure.logits, reference);
}

/// The lazy (two-round, quadrant-gated) ABReLU schedule computes the same
/// function.
#[test]
fn lazy_rounds_are_bit_exact() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 400);
    let mut cfg = ProtocolConfig::exact(16);
    cfg.relu_rounds = ReluRounds::Lazy;
    let s = &data.test()[1];
    let secure = run_two_party(&model, &cfg, &s.image, 0).expect("2pc runs");
    let reference =
        model.forward_ring_exact(&s.image, cfg.q1_bits, cfg.q2_bits).expect("reference");
    assert_eq!(secure.logits, reference);
}

/// The paper-faithful configuration (local truncation + local extension)
/// is probabilistic, but with the recommended headroom the classification
/// decision should almost always match the plaintext model.
#[test]
fn paper_mode_preserves_argmax_with_headroom() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 500);
    let cfg = ProtocolConfig::paper(18); // generous headroom
    let n = 12;
    let mut agree = 0;
    for s in data.test().iter().take(n) {
        let secure = run_two_party(&model, &cfg, &s.image, 0).expect("2pc runs");
        let plain = model.forward(&s.image).expect("plaintext runs");
        if argmax_i64(&secure.logits) == argmax_i64(&plain) {
            agree += 1;
        }
    }
    assert!(agree >= n - 2, "argmax agreement {agree}/{n}");
}

/// The INST Q compiler's byte accounting must match the live engine's
/// measured traffic exactly (single-round schedule).
#[test]
fn compiled_bytes_match_measured_bytes() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 600);
    for mode in [ReluMode::RevealedSign, ReluMode::MaskedMux] {
        let mut cfg = ProtocolConfig::paper(16);
        cfg.relu_mode = mode;
        let program = instq::compile(&model, &cfg);
        let run = run_two_party(&model, &cfg, &data.test()[0].image, 0).expect("2pc runs");
        assert_eq!(
            program.user_bytes_sent(),
            run.user_stats.bytes_sent,
            "user bytes, mode {mode:?}"
        );
        assert_eq!(
            program.provider_bytes_sent(),
            run.provider_stats.bytes_sent,
            "provider bytes, mode {mode:?}"
        );
    }
}

/// Shrinking the ABReLU carrier shrinks measured communication — the
/// paper's core claim (Tables 7/8 mechanism), measured live.
#[test]
fn communication_scales_down_with_q1() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 700);
    let image = &data.test()[0].image;
    let mut prev = u64::MAX;
    for bits in [24u32, 16, 12] {
        let cfg = ProtocolConfig::paper(bits);
        let run = run_two_party(&model, &cfg, image, 0).expect("2pc runs");
        let total = run.user_stats.total_bytes();
        assert!(total < prev, "q1={bits}: {total} not < {prev}");
        prev = total;
    }
}

/// Per-operator phase accounting covers the traffic: conv + abrelu +
/// maxpool + output phases must add up to the total.
#[test]
fn phase_accounting_is_complete() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 800);
    let cfg = ProtocolConfig::paper(16);
    let run = run_two_party(&model, &cfg, &data.test()[0].image, 0).expect("2pc runs");
    let st = &run.user_stats;
    let phase_sum: u64 = st.phases.values().map(|p| p.bytes_sent).sum();
    assert_eq!(phase_sum, st.bytes_sent);
    assert!(st.phases.keys().any(|k| k.starts_with("conv")));
    assert!(st.phases.keys().any(|k| k.starts_with("abrelu")));
    assert!(st.phases.keys().any(|k| k.starts_with("maxpool")));
    assert!(st.phases.contains_key("output"));
}

/// Average pooling variant must run without any comparison traffic in its
/// pooling phases (the Sec. 6.5 optimization).
#[test]
fn avgpool_variant_has_no_pool_communication() {
    let (model, data) = trained_model(&zoo::tiny_cnn_avgpool(4), 900);
    let cfg = ProtocolConfig::paper(16);
    let run = run_two_party(&model, &cfg, &data.test()[0].image, 0).expect("2pc runs");
    let st = &run.user_stats;
    assert!(st.phases.keys().all(|k| !k.starts_with("maxpool")));
    let avg_bytes: u64 = st
        .phases
        .iter()
        .filter(|(k, _)| k.starts_with("avgpool"))
        .map(|(_, p)| p.total_bytes())
        .sum();
    assert_eq!(avg_bytes, 0, "2PC-AvgPool must be AS-ALU only");
}

/// MaxPool costs communication where AvgPool does not; total traffic of
/// the max-pool model strictly dominates.
#[test]
fn maxpool_model_costs_more_than_avgpool_model() {
    let (max_model, data) = trained_model(&zoo::tiny_cnn(4), 1000);
    let (avg_model, _) = trained_model(&zoo::tiny_cnn_avgpool(4), 1000);
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;
    let max_run = run_two_party(&max_model, &cfg, image, 0).expect("runs");
    let avg_run = run_two_party(&avg_model, &cfg, image, 0).expect("runs");
    assert!(
        max_run.user_stats.total_bytes() > avg_run.user_stats.total_bytes(),
        "max {} vs avg {}",
        max_run.user_stats.total_bytes(),
        avg_run.user_stats.total_bytes()
    );
}
