//! Thread-count invariance of the batched nonlinear engine.
//!
//! `secure_sign` fans its code-matrix construction, OT encryption and sign
//! reduction out across worker threads; the 2PC contract is that this is
//! *unobservable*: every thread count must produce bit-identical sign flags
//! and a byte-identical wire transcript (`ChannelStats`: bytes, messages,
//! rounds, per-phase). This file pins that exhaustively on a small ring
//! (ℓ = 6: every `(x_0, x_1)` share pair) across
//! {Single, Lazy} × {RevealedSign, MaskedMux} × thread counts {1, 4}.

use aq2pnn::abrelu::secure_sign;
use aq2pnn::sim::run_pair;
use aq2pnn::{ProtocolConfig, ReluMode, ReluRounds};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use aq2pnn_transport::ChannelStats;
use std::sync::Mutex;

/// Serializes tests that mutate the process-wide `AQ2PNN_THREADS` knob.
static THREAD_ENV: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_ENV.lock().unwrap();
    std::env::set_var("AQ2PNN_THREADS", threads);
    let out = f();
    std::env::remove_var("AQ2PNN_THREADS");
    out
}

/// Both parties' observable outcome of one batched `secure_sign` run: the
/// receiver's flags, the sender's flags (revealed mode only), and both
/// transcripts.
type SignRun = ((Option<Vec<u8>>, ChannelStats), (Option<Vec<u8>>, ChannelStats));

/// Runs `secure_sign` over the given per-party share vectors.
fn run_sign(cfg: &ProtocolConfig, s0: Vec<u64>, s1: Vec<u64>, mode: ReluMode) -> SignRun {
    let ring = cfg.q1();
    run_pair(cfg, move |ctx| {
        let raw = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        let t = RingTensor::from_raw(ring, vec![raw.len()], raw).unwrap();
        let share = AShare::from_tensor(t);
        ctx.ep.reset_stats();
        let flags = secure_sign(ctx, &share, mode).unwrap();
        (flags.flags, ctx.ep.stats())
    })
}

/// Every (x_0, x_1) share pair of the ℓ=6 ring as one 4096-element batch.
fn exhaustive_shares(ring: Ring) -> (Vec<u64>, Vec<u64>, Vec<u8>) {
    let q = 1u64 << ring.bits();
    let mut s0 = Vec::with_capacity((q * q) as usize);
    let mut s1 = Vec::with_capacity((q * q) as usize);
    let mut expect = Vec::with_capacity((q * q) as usize);
    for x0 in 0..q {
        for x1 in 0..q {
            s0.push(x0);
            s1.push(x1);
            expect.push(u8::from(ring.decode_signed(ring.add(x0, x1)) > 0));
        }
    }
    (s0, s1, expect)
}

#[test]
fn exhaustive_l6_all_modes_and_thread_counts() {
    let ring = Ring::new(6);
    let (s0, s1, expect) = exhaustive_shares(ring);
    for rounds in [ReluRounds::Single, ReluRounds::Lazy] {
        for mode in [ReluMode::RevealedSign, ReluMode::MaskedMux] {
            let mut cfg = ProtocolConfig::paper(6);
            cfg.relu_rounds = rounds;
            cfg.relu_mode = mode;
            let mut runs: Vec<SignRun> = Vec::new();
            for threads in ["1", "4"] {
                let (cfg2, s0c, s1c) = (cfg.clone(), s0.clone(), s1.clone());
                runs.push(with_threads(threads, || run_sign(&cfg2, s0c, s1c, mode)));
            }
            // Receiver flags match the plaintext sign of (x_0 + x_1) mod Q.
            for ((_, _), (provider, _)) in &runs {
                assert_eq!(
                    provider.as_deref(),
                    Some(&expect[..]),
                    "rounds={rounds:?} mode={mode:?}"
                );
            }
            // Revealed mode: sender learns the same flags; masked: none.
            for ((user, _), _) in &runs {
                match mode {
                    ReluMode::RevealedSign => {
                        assert_eq!(user.as_deref(), Some(&expect[..]));
                    }
                    ReluMode::MaskedMux => assert!(user.is_none()),
                }
            }
            // Byte-identical transcripts across thread counts: bytes,
            // messages, rounds and the per-phase breakdown all agree.
            let ((_, u_serial), (_, p_serial)) = &runs[0];
            for ((_, u_par), (_, p_par)) in &runs[1..] {
                assert_eq!(u_serial, u_par, "user transcript drifted: {rounds:?} {mode:?}");
                assert_eq!(p_serial, p_par, "provider transcript drifted: {rounds:?} {mode:?}");
            }
        }
    }
}

/// Same invariance on a wider ring with a large batch — the geometry the
/// chunked fan-out actually splits (ℓ=16 ⇒ 9 groups, 32 OT slots/item).
#[test]
fn wide_ring_large_batch_thread_invariance() {
    let ring = Ring::new(16);
    let n = 4096usize;
    let s0: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e37_79b9) & ring.mask()).collect();
    let s1: Vec<u64> = (0..n as u64).map(|i| (i * 0x85eb_ca6b + 17) & ring.mask()).collect();
    let expect: Vec<u8> = s0
        .iter()
        .zip(&s1)
        .map(|(&a, &b)| u8::from(ring.decode_signed(ring.add(a, b)) > 0))
        .collect();
    for rounds in [ReluRounds::Single, ReluRounds::Lazy] {
        let mut cfg = ProtocolConfig::paper(16);
        cfg.relu_rounds = rounds;
        let mut runs: Vec<SignRun> = Vec::new();
        for threads in ["1", "4"] {
            let (cfg2, s0c, s1c) = (cfg.clone(), s0.clone(), s1.clone());
            runs.push(with_threads(threads, || run_sign(&cfg2, s0c, s1c, ReluMode::RevealedSign)));
        }
        for ((user, _), (provider, _)) in &runs {
            assert_eq!(provider.as_deref(), Some(&expect[..]), "rounds={rounds:?}");
            assert_eq!(user.as_deref(), Some(&expect[..]), "rounds={rounds:?}");
        }
        let ((_, u_serial), (_, p_serial)) = &runs[0];
        for ((_, u_par), (_, p_par)) in &runs[1..] {
            assert_eq!(u_serial, u_par, "user transcript drifted: {rounds:?}");
            assert_eq!(p_serial, p_par, "provider transcript drifted: {rounds:?}");
        }
    }
}
