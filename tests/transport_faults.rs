//! Fault-tolerance soak: full two-party inference over fault-injected
//! links must complete with logits **bit-identical** to the in-memory run,
//! with bounded retries — and unrecoverable links must surface typed
//! errors, never panics.
//!
//! The always-on tests run `tiny_cnn` (fast in debug builds) over seeded
//! schedules of drops, duplicates, corruption and delays, plus a TCP
//! loopback run with forced mid-inference disconnects. The LeNet5 soak is
//! `#[ignore]`d and executed by the release-mode CI fault-matrix job.

use aq2pnn::dealer::{DealerConfig, ExhaustionPolicy};
use aq2pnn::sim::{run_two_party, run_two_party_over, run_two_party_service, PartyObs};
use aq2pnn::substrate::obs::MetricsRegistry;
use aq2pnn::{ProtocolConfig, ProtocolError};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_transport::{
    duplex, mem_pair, Endpoint, FaultPlan, FaultyTransport, Session, SessionConfig, TcpConfig,
    TcpTransport, Transport, TransportError,
};
use std::sync::Arc;
use std::time::Duration;

fn trained_model(spec: &aq2pnn_nn::spec::ModelSpec, seed: u64) -> (QuantModel, SyntheticVision) {
    let data = SyntheticVision::tiny(4, seed);
    let mut net = FloatNet::init(spec, seed + 1).expect("valid spec");
    net.train_epochs(&data, 2, 8, 0.05);
    let q = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())
        .expect("quantization succeeds");
    (q, data)
}

/// Session tuning for soak runs: fast probes so dropped frames are
/// re-requested quickly, generous probe budget so slow debug-mode compute
/// phases are not mistaken for a dead link.
fn soak_session_cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        probe_interval: Duration::from_millis(25),
        max_probes: 1200,
        jitter_seed: seed,
        ..SessionConfig::default()
    }
}

/// Endpoint pair over fault-injected in-memory links. Returns the fault
/// proxies and sessions too so tests can assert on injected/repaired
/// counts.
#[allow(clippy::type_complexity)]
fn faulty_mem_endpoints(
    plan0: FaultPlan,
    plan1: FaultPlan,
    scfg: SessionConfig,
) -> (Endpoint, Endpoint, [Arc<FaultyTransport>; 2], [Arc<Session>; 2]) {
    let (r0, r1) = mem_pair();
    let f0 = Arc::new(FaultyTransport::new(Arc::new(r0), plan0));
    let f1 = Arc::new(FaultyTransport::new(Arc::new(r1), plan1));
    let s0 = Arc::new(Session::new(Arc::clone(&f0) as Arc<dyn Transport>, scfg));
    let s1 = Arc::new(Session::new(Arc::clone(&f1) as Arc<dyn Transport>, scfg));
    let e0 = Endpoint::over_transport(Arc::clone(&s0) as Arc<dyn Transport>, None);
    let e1 = Endpoint::over_transport(Arc::clone(&s1) as Arc<dyn Transport>, None);
    (e0, e1, [f0, f1], [s0, s1])
}

/// Endpoint pair over a real TCP loopback connection, each side behind a
/// fault proxy and a reliability session.
#[allow(clippy::type_complexity)]
fn faulty_tcp_endpoints(
    plan0: FaultPlan,
    plan1: FaultPlan,
    scfg: SessionConfig,
) -> (Endpoint, Endpoint, [Arc<FaultyTransport>; 2], [Arc<Session>; 2]) {
    let listener = TcpTransport::listen("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound addr");
    let connector = TcpTransport::connect(addr, TcpConfig::default()).expect("dial loopback");
    let f0 = Arc::new(FaultyTransport::new(Arc::new(connector), plan0));
    let f1 = Arc::new(FaultyTransport::new(Arc::new(listener), plan1));
    let s0 = Arc::new(Session::new(Arc::clone(&f0) as Arc<dyn Transport>, scfg));
    let s1 = Arc::new(Session::new(Arc::clone(&f1) as Arc<dyn Transport>, scfg));
    let e0 = Endpoint::over_transport(Arc::clone(&s0) as Arc<dyn Transport>, None);
    let e1 = Endpoint::over_transport(Arc::clone(&s1) as Arc<dyn Transport>, None);
    (e0, e1, [f0, f1], [s0, s1])
}

/// Lossy in-memory schedules: five seeds of mixed drop/duplicate/corrupt/
/// delay faults. Logits must match the clean run bit for bit and the
/// repair work must stay bounded.
#[test]
fn tiny_cnn_bit_identical_under_lossy_schedules() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 77);
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;
    let baseline = run_two_party(&model, &cfg, image, 0).expect("clean run").logits;

    let mut total_injected = 0u64;
    for seed in [1u64, 2, 3, 4, 5] {
        let (e0, e1, faults, sessions) = faulty_mem_endpoints(
            FaultPlan::lossy(seed),
            FaultPlan::lossy(seed ^ 0xFFFF),
            soak_session_cfg(seed),
        );
        let run = run_two_party_over(e0, e1, &model, &cfg, image)
            .unwrap_or_else(|e| panic!("seed {seed}: inference failed under faults: {e}"));
        assert_eq!(run.logits, baseline, "seed {seed}: logits diverged under faults");
        for f in &faults {
            let s = f.stats();
            total_injected += s.dropped + s.duplicated + s.corrupted + s.delayed;
        }
        for s in &sessions {
            let t = s.telemetry();
            assert!(
                t.retransmits < 20_000,
                "seed {seed}: unbounded retransmission ({} frames)",
                t.retransmits
            );
        }
    }
    assert!(total_injected > 0, "fault schedules never fired — soak is vacuous");
}

/// TCP loopback with forced disconnects on both sides mid-inference: the
/// sessions must reconnect, replay, and still produce the clean logits.
#[test]
fn tiny_cnn_tcp_survives_disconnect_and_reconnect() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 78);
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;
    let baseline = run_two_party(&model, &cfg, image, 0).expect("clean run").logits;

    // A tiny_cnn inference sends ~23 session frames per party; disconnect
    // early on one side and mid-run on the other so both reconnect paths
    // (connector redial, listener re-accept) are exercised.
    let plan0 = FaultPlan { disconnect_at: vec![8], ..FaultPlan::clean() };
    let plan1 = FaultPlan { disconnect_at: vec![15], ..FaultPlan::clean() };
    let (e0, e1, faults, sessions) = faulty_tcp_endpoints(plan0, plan1, soak_session_cfg(0xDEAD));
    let run = run_two_party_over(e0, e1, &model, &cfg, image)
        .expect("inference must survive disconnects");
    assert_eq!(run.logits, baseline, "logits diverged across reconnects");

    let disconnects: u64 = faults.iter().map(|f| f.stats().disconnects).sum();
    assert!(disconnects >= 1, "no disconnect was injected — test is vacuous");
    let reconnects: u64 = sessions.iter().map(|s| s.telemetry().reconnects).sum();
    assert!(reconnects >= 1, "sessions never reconnected despite {disconnects} disconnects");
}

/// Clean TCP loopback run (no faults): sanity that the real socket path
/// alone is transparent to the protocol.
#[test]
fn tiny_cnn_tcp_loopback_clean_run_matches() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 79);
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;
    let baseline = run_two_party(&model, &cfg, image, 0).expect("clean run").logits;

    let (e0, e1, _faults, _sessions) =
        faulty_tcp_endpoints(FaultPlan::clean(), FaultPlan::clean(), soak_session_cfg(1));
    let run = run_two_party_over(e0, e1, &model, &cfg, image).expect("tcp run");
    assert_eq!(run.logits, baseline);
}

/// An unrecoverable link (everything dropped, tight probe budget) must
/// surface a typed transport error through the whole engine stack — not a
/// panic, not a hang.
#[test]
fn dead_link_degrades_to_typed_error() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 80);
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;

    let black_hole = FaultPlan { drop_per_mille: 1000, ..FaultPlan::clean() };
    let scfg = SessionConfig {
        probe_interval: Duration::from_millis(5),
        max_probes: 10,
        ..SessionConfig::default()
    };
    let (e0, e1, _faults, _sessions) = faulty_mem_endpoints(black_hole.clone(), black_hole, scfg);
    let err = run_two_party_over(e0, e1, &model, &cfg, image)
        .expect_err("a black-hole link cannot complete an inference");
    match err {
        ProtocolError::Transport(
            TransportError::RetriesExhausted(_)
            | TransportError::Timeout
            | TransportError::Disconnected,
        )
        | ProtocolError::Desync(_) => {}
        other => panic!("expected a typed transport/desync error, got: {other}"),
    }
}

/// Fault-metrics soak: a fault-injected TCP inference with metrics
/// registries attached to both sessions. The exported `session.*` counters
/// must mirror the session telemetry *exactly*, and the detected-fault
/// counters must reconcile with the seeded fault schedule: every injected
/// corruption is one checksum failure (and one Nak) on the peer, every
/// injected disconnect forces at least one reconnect.
#[test]
#[ignore = "soak: release-mode CI fault-matrix job runs this"]
fn fault_metrics_soak_exported_counters_match_schedule() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 81);
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;
    let baseline = run_two_party(&model, &cfg, image, 0).expect("clean run").logits;

    for seed in [7u64, 13, 29] {
        // Corruption + duplication (event-driven recovery, deterministic
        // per seed) plus one forced disconnect per side.
        let mk_plan = |s: u64, cut: u64| FaultPlan {
            seed: s,
            corrupt_per_mille: 25,
            duplicate_per_mille: 25,
            disconnect_at: vec![cut],
            ..FaultPlan::clean()
        };
        let plan0 = mk_plan(0xfa_0000 + seed, 7 + seed % 5);
        let plan1 = mk_plan(0xfb_0000 + seed, 14 + seed % 7);
        let (e0, e1, faults, sessions) = faulty_tcp_endpoints(plan0, plan1, soak_session_cfg(seed));
        let regs = [MetricsRegistry::new(), MetricsRegistry::new()];
        for (sess, reg) in sessions.iter().zip(&regs) {
            sess.attach_metrics(reg);
        }

        let run = run_two_party_over(e0, e1, &model, &cfg, image)
            .unwrap_or_else(|e| panic!("seed {seed}: inference failed under faults: {e}"));
        assert_eq!(run.logits, baseline, "seed {seed}: logits diverged under faults");

        let mut reconnects = 0u64;
        for (side, (sess, reg)) in sessions.iter().zip(&regs).enumerate() {
            let t = sess.telemetry();
            let snap = reg.snapshot();
            let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
            // 1. The export is an exact mirror of the telemetry.
            for (name, want) in [
                ("session.retransmits", t.retransmits),
                ("session.reconnects", t.reconnects),
                ("session.naks_sent", t.naks_sent),
                ("session.corrupt_frames", t.corrupt_frames),
                ("session.duplicates", t.duplicates),
                ("session.gaps", t.gaps),
                ("session.backoff_sleeps", t.backoff_sleeps),
                ("session.backoff_ms", t.backoff_ms),
            ] {
                assert_eq!(
                    counter(name),
                    want,
                    "seed {seed} side {side}: exported {name} drifted from telemetry"
                );
            }
            // 2. Every corruption injected by the *peer's* proxy is one
            //    checksum failure here — no silent acceptance, no double
            //    counting.
            let peer_injected = faults[1 - side].stats();
            assert_eq!(
                t.corrupt_frames, peer_injected.corrupted,
                "seed {seed} side {side}: detected corruptions != injected"
            );
            assert!(
                t.naks_sent >= t.corrupt_frames,
                "seed {seed} side {side}: corrupt frames must be Nak'd"
            );
            reconnects += t.reconnects;
        }
        let disconnects: u64 = faults.iter().map(|f| f.stats().disconnects).sum();
        assert!(disconnects >= 2, "seed {seed}: both planned disconnects must fire");
        assert!(
            reconnects >= disconnects,
            "seed {seed}: {disconnects} disconnects but only {reconnects} reconnects recorded"
        );
    }
}

/// Batched service pass with a **background dealer** over a lossy link:
/// the dealer is party-local offline machinery, so link faults must not
/// perturb the batched online pass — the chunked `run_batch` logits must
/// stay bit-identical to the clean in-memory service run, with bounded
/// repair work. One seeded schedule keeps the fault-matrix job's runtime
/// in budget; the per-image lossy sweep above covers the seed space.
#[test]
#[ignore = "soak: release-mode CI fault-matrix job runs this"]
fn batched_dealer_service_bit_identical_under_lossy_link() {
    let (model, data) = trained_model(&zoo::tiny_cnn(4), 91);
    let cfg = ProtocolConfig::paper(16);
    let images: Vec<&[f32]> = data.test().iter().take(4).map(|s| s.image.as_slice()).collect();

    // Clean baseline with the *same* consumption pattern (batch 2, two
    // chunks): local truncation makes logits a function of the per-lane
    // triple stream position, so the baseline must batch identically.
    let (e0, e1) = duplex();
    let baseline = run_two_party_service(
        e0,
        e1,
        &model,
        &cfg,
        &images,
        2,
        None,
        PartyObs::default(),
        PartyObs::default(),
    )
    .expect("clean service run")
    .logits;

    let seed = 91u64;
    let (e0, e1, faults, sessions) = faulty_mem_endpoints(
        FaultPlan::lossy(seed),
        FaultPlan::lossy(seed ^ 0xFFFF),
        soak_session_cfg(seed),
    );
    let dealer = DealerConfig { depth: 8, policy: ExhaustionPolicy::GenerateInline };
    let run = run_two_party_service(
        e0,
        e1,
        &model,
        &cfg,
        &images,
        2,
        Some(dealer),
        PartyObs::default(),
        PartyObs::default(),
    )
    .expect("dealer-backed service must survive the lossy link");
    assert_eq!(run.logits, baseline, "batched logits diverged under faults");

    let injected: u64 = faults
        .iter()
        .map(|f| {
            let s = f.stats();
            s.dropped + s.duplicated + s.corrupted + s.delayed
        })
        .sum();
    assert!(injected > 0, "lossy schedule never fired — soak is vacuous");
    for s in &sessions {
        assert!(s.telemetry().retransmits < 40_000, "unbounded retransmission under faults");
    }
}

/// Full LeNet5 soak over TCP loopback under five seeded schedules
/// (mixed faults plus disconnects). Heavy: run in release via
/// `cargo test --release -- --include-ignored` (the CI fault-matrix job).
#[test]
#[ignore = "heavy: release-mode CI fault-matrix job runs this"]
fn lenet5_tcp_soak_bit_identical_under_fault_matrix() {
    let data = SyntheticVision::mnist_like(2024);
    let mut net = FloatNet::init(&zoo::lenet5(), 9).expect("valid spec");
    net.train_epochs(&data, 1, 16, 0.05);
    let model = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())
        .expect("quantization succeeds");
    let cfg = ProtocolConfig::paper(16);
    let image = &data.test()[0].image;
    let baseline = run_two_party(&model, &cfg, image, 0).expect("clean run").logits;

    for seed in [11u64, 22, 33, 44, 55] {
        let mut plan0 = FaultPlan::lossy(seed);
        let mut plan1 = FaultPlan::lossy(seed ^ 0xABCD);
        // Forced disconnects at schedule-dependent points early enough to
        // fire within the frame budget of one inference.
        plan0.disconnect_at = vec![6 + seed % 9];
        plan1.disconnect_at = vec![12 + seed % 11];
        let (e0, e1, faults, sessions) = faulty_tcp_endpoints(plan0, plan1, soak_session_cfg(seed));
        let run = run_two_party_over(e0, e1, &model, &cfg, image)
            .unwrap_or_else(|e| panic!("seed {seed}: LeNet5 soak failed: {e}"));
        assert_eq!(run.logits, baseline, "seed {seed}: logits diverged under fault matrix");
        let injected: u64 = faults
            .iter()
            .map(|f| {
                let s = f.stats();
                s.dropped + s.duplicated + s.corrupted + s.delayed + s.disconnects
            })
            .sum();
        assert!(injected > 0, "seed {seed}: schedule never fired");
        for s in &sessions {
            assert!(s.telemetry().retransmits < 100_000, "seed {seed}: unbounded retries");
        }
    }
}
