//! Spawned-process coverage for `aq2pnn-serve`'s signal-driven drain.
//!
//! Exercises the deployable binary end to end: spawn it on an ephemeral
//! port, read the `listening on <addr>` ready line, deliver a real
//! SIGTERM/SIGINT and assert the documented exit codes — `0` for a clean
//! drain, `3` when the drain budget expires and in-flight sessions are
//! force-closed.
//!
//! The binary path comes from `CARGO_BIN_EXE_aq2pnn-serve` (set by cargo
//! for integration tests of the crate that owns the binary), so no PATH
//! assumptions are made. Signals are delivered with `kill(1)`, which
//! every POSIX platform the server targets ships.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SERVE: &str = env!("CARGO_BIN_EXE_aq2pnn-serve");

/// Spawns the serving binary and returns it with its bound address.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(SERVE);
    // `tiny` trains in a couple of seconds even in debug builds.
    cmd.args(["--listen", "127.0.0.1:0", "--model", "tiny"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn aq2pnn-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines.next().expect("ready line").expect("read ready line");
    let addr = ready
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected ready line: {ready:?}"))
        .to_owned();
    // Keep draining stdout in the background so the child can never block
    // on a full pipe while we wait on it.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn deliver(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .args([format!("-{sig}"), child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -{sig} failed");
}

fn wait_with_deadline(mut child: Child, budget: Duration) -> i32 {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code().expect("exit code (process must not die to a signal)");
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("aq2pnn-serve did not exit within {budget:?} after the signal");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_with_no_sessions_drains_clean_with_exit_zero() {
    let (child, _addr) = spawn_serve(&[]);
    deliver(&child, "TERM");
    assert_eq!(wait_with_deadline(child, Duration::from_secs(30)), 0);
}

#[test]
fn sigint_is_honoured_like_sigterm() {
    let (child, _addr) = spawn_serve(&[]);
    deliver(&child, "INT");
    assert_eq!(wait_with_deadline(child, Duration::from_secs(30)), 0);
}

#[test]
fn drain_budget_expiry_forces_sessions_and_exits_three() {
    // A parked admission: connect and say nothing. The huge admission,
    // idle and deadline budgets keep the reaper out of the way, so the
    // session is still in flight when the 300 ms drain budget expires and
    // must be force-closed — the documented exit-code-3 path.
    let (child, addr) = spawn_serve(&[
        "--admission-timeout-ms",
        "120000",
        "--idle-timeout-ms",
        "120000",
        "--session-deadline-ms",
        "120000",
        "--drain-timeout-ms",
        "300",
    ]);
    let mut parked = TcpStream::connect(&addr).expect("connect to server");
    // Admission happens on accept (no bytes needed); give the accept loop
    // a beat to register the session before the signal lands.
    std::thread::sleep(Duration::from_millis(300));

    deliver(&child, "TERM");
    let code = wait_with_deadline(child, Duration::from_secs(30));
    assert_eq!(code, 3, "a force-closed drain must exit 3");

    // The force-close reached the wire: the parked socket reads EOF (or a
    // reset) rather than hanging.
    parked.set_read_timeout(Some(Duration::from_secs(5))).expect("set timeout");
    let mut buf = [0u8; 256];
    loop {
        match parked.read(&mut buf) {
            Ok(0) | Err(_) => break, // EOF or reset: the server side is gone
            Ok(_) => {}              // drain whatever was still queued
        }
    }
}
