//! Amortization tests for [`aq2pnn::prepared::PreparedModel`]: preparation
//! pays the offline cost (weight-share PRG derivation + `offline-f` mask
//! openings) exactly once, and every subsequent run is online-only.

use aq2pnn::engine::PartyInput;
use aq2pnn::prepared::PreparedModel;
use aq2pnn::sim::{run_pair, run_two_party};
use aq2pnn::ProtocolConfig;
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::ChannelStats;

fn trained_model(seed: u64) -> (QuantModel, SyntheticVision) {
    let data = SyntheticVision::tiny(4, seed);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), seed + 1).expect("valid spec");
    net.train_epochs(&data, 2, 8, 0.05);
    let q = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())
        .expect("quantization succeeds");
    (q, data)
}

/// One party's transcript of prepare + three runs.
type Transcript = (ChannelStats, Vec<(Vec<i64>, ChannelStats)>);

/// Prepares once, runs three inferences (same image twice, then a second
/// image), resetting the channel counters around each stage so every
/// stage's traffic is observable in isolation.
fn prepare_and_run_thrice(
    cfg: &ProtocolConfig,
    model: &QuantModel,
    images: [Vec<f32>; 3],
) -> (Transcript, Transcript) {
    let model = model.clone();
    run_pair(cfg, move |ctx| {
        ctx.ep.reset_stats();
        let mut prepared = PreparedModel::prepare(ctx, &model).expect("prepare succeeds");
        let prep_stats = ctx.ep.stats();
        let mut runs = Vec::new();
        for image in &images {
            ctx.ep.reset_stats();
            let out = match ctx.id {
                PartyId::User => prepared.run(ctx, PartyInput::User(image)),
                PartyId::ModelProvider => prepared.run(ctx, PartyInput::Provider),
            }
            .expect("run succeeds");
            runs.push((out.logits, ctx.ep.stats()));
        }
        (prep_stats, runs)
    })
}

/// Repeated `PreparedModel::run` calls perform zero weight-share PRG
/// regeneration and zero `offline-f` traffic after preparation: all
/// `offline-f` bytes land in the preparation stage, every run carries
/// none, and the per-run online traffic is byte-identical across runs.
#[test]
fn repeated_runs_carry_no_offline_traffic() {
    let (model, data) = trained_model(900);
    // Exact share conversions: under `paper` mode local truncation has a
    // share-dependent ±1, so fresh per-run triples would legitimately
    // perturb logits by one ulp and mask what this test is after.
    let cfg = ProtocolConfig::exact(16);
    let img_a = data.test()[0].image.clone();
    let img_b = data.test()[1].image.clone();
    let ((prep, runs), (prep_p, runs_p)) =
        prepare_and_run_thrice(&cfg, &model, [img_a.clone(), img_a.clone(), img_b]);

    // Preparation carries the weight-mask openings — and only offline
    // phases (`offline-f` plus any share-conversion setup, none today).
    let off = prep.phase("offline-f");
    assert!(off.bytes_sent > 0, "prepare must open the weight masks");
    assert_eq!(
        prep.total_bytes(),
        off.bytes_sent + off.bytes_received,
        "preparation traffic is exclusively offline-f"
    );

    for (who, runs) in [("user", &runs), ("provider", &runs_p)] {
        for (i, (_, stats)) in runs.iter().enumerate() {
            assert!(
                !stats.phases.contains_key("offline-f"),
                "{who} run {i} re-opened weight masks"
            );
            assert_eq!(
                stats.total_bytes(),
                runs[0].1.total_bytes(),
                "{who} run {i}: online byte cost must not drift across runs"
            );
        }
    }

    // Same input twice → same logits (fresh per-inference triples must not
    // perturb the function value); parties always agree.
    assert_eq!(runs[0].0, runs[1].0, "same image must yield same logits");
    for (u, p) in runs.iter().zip(&runs_p) {
        assert_eq!(u.0, p.0, "parties recovered different logits");
    }

    // Sanity: preparation did real work.
    assert!(prep_p.total_bytes() == prep.total_bytes());
}

/// The single-shot `run_party` wrapper is exactly prepare + one run: same
/// logits, and its traffic equals the sum of the two stages.
#[test]
fn run_party_equals_prepare_plus_one_run() {
    let (model, data) = trained_model(910);
    let cfg = ProtocolConfig::paper(16);
    let image = data.test()[0].image.clone();
    let ((prep, runs), _) =
        prepare_and_run_thrice(&cfg, &model, [image.clone(), image.clone(), image.clone()]);
    let single = run_two_party(&model, &cfg, &image, 0).expect("2pc runs");
    assert_eq!(single.logits, runs[0].0);
    assert_eq!(single.user_stats.total_bytes(), prep.total_bytes() + runs[0].1.total_bytes());
}
