//! Dynamic leakage harness: transcript-uniformity and timing side-channel
//! checks complementing the static `secrecy-lint` pass.
//!
//! Two families of tests:
//!
//! 1. **Transcript homogeneity** — runs the batched secure comparison end
//!    to end under [`ReluMode::MaskedMux`] for two secret-input classes
//!    (a fixed plaintext vs. a fresh random plaintext per trial), captures
//!    every byte each party puts on the wire, and checks (a) the message
//!    count/size sequence is *identical* across classes and (b) a
//!    two-sample χ² test cannot distinguish the byte distributions. The
//!    two-sample form is deliberate: the wire format is structured
//!    (bit-packed codes, group elements mod p), so the transcript is not
//!    uniform over bytes — but its distribution must not depend on the
//!    plaintext.
//!
//! 2. **dudect-lite timing** — interleaved batched measurements of the
//!    branch-free kernels (`sign_from_codes`, the constant-time
//!    `Ring::pow` ladder) over a fixed-input class vs. a random-input
//!    class, percentile-cropped, compared with Welch's t-test. Thresholds
//!    and the retry policy are documented in `EXPERIMENTS.md`
//!    ("Leakage harness").

use aq2pnn::abrelu::{secure_sign, sign_from_codes};
use aq2pnn::engine::BatchInput;
use aq2pnn::prepared::PreparedModel;
use aq2pnn::sim::{run_pair, run_pair_over};
use aq2pnn::substrate::obs::{MetricsRegistry, Tracer};
use aq2pnn::{ProtocolConfig, ReluMode};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_ring::{ct, Ring, RingTensor};
use aq2pnn_sharing::{AShare, PartyId};
use aq2pnn_transport::{
    mem_pair, Endpoint, FaultPlan, FaultyTransport, Session, SessionConfig, Transport,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Transcript homogeneity
// ---------------------------------------------------------------------------

const Q1_BITS: u32 = 12;
const VALUES_PER_TRIAL: usize = 32;
const TRIALS: usize = 12;
/// Two-sample χ² threshold over ≤256 byte bins (df ≤ 255). Under the null
/// the statistic concentrates around df (σ ≈ √(2·df) ≈ 22.6); 400 is more
/// than six standard deviations out.
const CHI2_THRESHOLD: f64 = 400.0;

/// One party's outbound transcript for a trial: the raw bytes of every
/// message, in send order.
type Transcript = Vec<Vec<u8>>;

/// Runs one MaskedMux secure-sign execution on `vals` and returns both
/// parties' captured outbound transcripts.
fn captured_sign_run(vals: &[i64], trial: u64) -> (Transcript, Transcript) {
    captured_sign_run_obs(vals, trial, false)
}

/// [`captured_sign_run`] with optional tracing/metrics attached — the
/// observability layer must be wire-invisible, so transcripts captured
/// with and without it are compared byte for byte.
fn captured_sign_run_obs(vals: &[i64], trial: u64, traced: bool) -> (Transcript, Transcript) {
    let mut cfg = ProtocolConfig::paper(Q1_BITS);
    cfg.relu_mode = ReluMode::MaskedMux;
    // Fresh offline material per trial — the masks, not a fixed setup,
    // must be what hides the plaintext.
    cfg.setup_seed ^= 0x7261_1a00 + trial;
    let ring = cfg.q1();
    let t = RingTensor::from_signed(ring, vec![vals.len()], vals).expect("valid tensor");
    let mut share_rng = StdRng::seed_from_u64(0x5eed_0000 + trial);
    let (s0, s1) = AShare::share(&t, &mut share_rng);
    run_pair(&cfg, move |ctx| {
        if traced {
            ctx.set_obs(Tracer::new(), MetricsRegistry::new());
        }
        let mine = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        ctx.ep.start_capture();
        secure_sign(ctx, &mine, ReluMode::MaskedMux).expect("secure_sign");
        ctx.ep.take_capture()
    })
}

/// Attaching the tracer/metrics layer must not change a single wire byte:
/// spans observe the channel, they never touch it. Byte-identical
/// transcripts (not just shapes) with observability on vs. off.
#[test]
fn tracing_does_not_change_the_wire_transcript() {
    let half = 1i64 << (Q1_BITS - 1);
    let vals: Vec<i64> = (0..VALUES_PER_TRIAL).map(|i| (i as i64 * 53 % half) - half / 2).collect();
    for trial in 0..3u64 {
        let plain = captured_sign_run_obs(&vals, 0x0b5_000 + trial, false);
        let traced = captured_sign_run_obs(&vals, 0x0b5_000 + trial, true);
        assert_eq!(plain, traced, "trial {trial}: tracing altered the wire transcript");
    }
}

/// Message-size sequence of a two-party transcript pair — the shape an
/// eavesdropper sees without reading any payload bit.
fn shape(t: &(Transcript, Transcript)) -> (Vec<usize>, Vec<usize>) {
    (t.0.iter().map(Vec::len).collect(), t.1.iter().map(Vec::len).collect())
}

fn byte_histogram(transcripts: &[(Transcript, Transcript)]) -> [u64; 256] {
    let mut h = [0u64; 256];
    for (a, b) in transcripts {
        for msg in a.iter().chain(b.iter()) {
            for &byte in msg {
                h[usize::from(byte)] += 1;
            }
        }
    }
    h
}

/// Pearson two-sample χ² homogeneity statistic over the byte histograms.
/// Bins empty in both samples contribute no term (and no degree of
/// freedom), so the statistic is conservative for narrow wire alphabets.
fn chi2_two_sample(a: &[u64; 256], b: &[u64; 256]) -> (f64, usize) {
    let ta: u64 = a.iter().sum();
    let tb: u64 = b.iter().sum();
    assert!(ta > 0 && tb > 0, "empty transcript");
    let (ka, kb) = ((tb as f64 / ta as f64).sqrt(), (ta as f64 / tb as f64).sqrt());
    let mut chi2 = 0.0;
    let mut df = 0usize;
    for i in 0..256 {
        let (ai, bi) = (a[i] as f64, b[i] as f64);
        if a[i] + b[i] == 0 {
            continue;
        }
        let d = ka * ai - kb * bi;
        chi2 += d * d / (ai + bi);
        df += 1;
    }
    (chi2, df.saturating_sub(1))
}

/// The same plaintext (class A) vs. a fresh random plaintext per trial
/// (class B): with fresh sharing/offline randomness each trial, the wire
/// bytes of the two classes must be statistically indistinguishable, and
/// the message shapes must be *exactly* equal.
#[test]
fn masked_mux_transcript_is_plaintext_independent() {
    let half = 1i64 << (Q1_BITS - 1);
    let fixed: Vec<i64> =
        (0..VALUES_PER_TRIAL).map(|i| (i as i64 * 37 % half) - half / 2).collect();

    let mut class_a = Vec::with_capacity(TRIALS);
    let mut class_b = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS as u64 {
        let mut rng = StdRng::seed_from_u64(0xb0b0 + trial);
        let random: Vec<i64> =
            (0..VALUES_PER_TRIAL).map(|_| rng.gen_range(-half / 2..half / 2)).collect();
        class_a.push(captured_sign_run(&fixed, trial));
        class_b.push(captured_sign_run(&random, trial));
    }

    // (b) shape equality: same message count and sizes for every trial of
    // both classes — the metadata channel carries zero plaintext signal.
    let reference = shape(&class_a[0]);
    for t in class_a.iter().chain(class_b.iter()) {
        assert_eq!(shape(t), reference, "transcript shape depends on the secret input");
    }

    // (a) byte-distribution homogeneity between the classes.
    let ha = byte_histogram(&class_a);
    let hb = byte_histogram(&class_b);
    let (chi2, df) = chi2_two_sample(&ha, &hb);
    eprintln!("fixed-vs-random transcript: chi2 = {chi2:.1}, df = {df}");
    assert!(df >= 64, "wire alphabet unexpectedly narrow: df = {df}");
    assert!(
        chi2 < CHI2_THRESHOLD,
        "transcript byte distributions differ between secret classes: \
         chi2 = {chi2:.1} over {df} df (threshold {CHI2_THRESHOLD})"
    );
}

/// The transcript must also be indistinguishable across *extreme* secret
/// classes: all-maximally-negative vs. all-maximally-positive inputs.
#[test]
fn masked_mux_transcript_hides_the_sign() {
    let half = 1i64 << (Q1_BITS - 1);
    let neg: Vec<i64> = vec![-half + 1; VALUES_PER_TRIAL];
    let pos: Vec<i64> = vec![half - 1; VALUES_PER_TRIAL];

    let mut class_a = Vec::with_capacity(TRIALS);
    let mut class_b = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS as u64 {
        class_a.push(captured_sign_run(&neg, 0x100 + trial));
        class_b.push(captured_sign_run(&pos, 0x100 + trial));
    }

    let reference = shape(&class_a[0]);
    for t in class_a.iter().chain(class_b.iter()) {
        assert_eq!(shape(t), reference, "transcript shape depends on the sign");
    }
    let (chi2, df) = chi2_two_sample(&byte_histogram(&class_a), &byte_histogram(&class_b));
    eprintln!("neg-vs-pos transcript: chi2 = {chi2:.1}, df = {df}");
    assert!(
        chi2 < CHI2_THRESHOLD,
        "sign classes distinguishable on the wire: chi2 = {chi2:.1} over {df} df"
    );
}

/// Like [`captured_sign_run`], but over a fault-injected session link: the
/// capture is the **true wire view** (session frames with headers,
/// retransmissions, control traffic included), taken below the reliability
/// layer.
///
/// The fault plan uses corruption + duplication only: their recovery is
/// event-driven (Nak on a bad checksum, re-Ack on a duplicate), so the
/// frame schedule is a deterministic function of the fault seed. Drops are
/// excluded here because their recovery is probe-*timeout*-driven, which
/// would make the transcript shape depend on scheduler timing rather than
/// on secrets — the soak tests in `transport_faults.rs` cover them.
fn captured_faulty_sign_run(vals: &[i64], trial: u64) -> (Transcript, Transcript) {
    let mut cfg = ProtocolConfig::paper(Q1_BITS);
    cfg.relu_mode = ReluMode::MaskedMux;
    cfg.setup_seed ^= 0x7261_1a00 + trial;
    let ring = cfg.q1();
    let t = RingTensor::from_signed(ring, vec![vals.len()], vals).expect("valid tensor");
    let mut share_rng = StdRng::seed_from_u64(0x5eed_0000 + trial);
    let (s0, s1) = AShare::share(&t, &mut share_rng);

    // Fault schedule depends only on the trial, never on the secret class,
    // so both classes see identical faults at identical frame indices.
    let plan = |side: u64| FaultPlan {
        seed: 0xfa11_7000 ^ (trial * 2 + side),
        corrupt_per_mille: 30,
        duplicate_per_mille: 30,
        ..FaultPlan::default()
    };
    // A huge probe interval keeps timing-driven Naks out of the capture.
    let scfg =
        SessionConfig { probe_interval: Duration::from_secs(30), ..SessionConfig::default() };
    let (r0, r1) = mem_pair();
    let sess0 = Arc::new(Session::new(
        Arc::new(FaultyTransport::new(Arc::new(r0), plan(0))) as Arc<dyn Transport>,
        scfg,
    ));
    let sess1 = Arc::new(Session::new(
        Arc::new(FaultyTransport::new(Arc::new(r1), plan(1))) as Arc<dyn Transport>,
        scfg,
    ));
    sess0.start_wire_capture();
    sess1.start_wire_capture();
    let e0 = Endpoint::over_transport(Arc::clone(&sess0) as Arc<dyn Transport>, None);
    let e1 = Endpoint::over_transport(Arc::clone(&sess1) as Arc<dyn Transport>, None);
    run_pair_over(e0, e1, &cfg, move |ctx| {
        let mine = match ctx.id {
            PartyId::User => s0.clone(),
            PartyId::ModelProvider => s1.clone(),
        };
        secure_sign(ctx, &mine, ReluMode::MaskedMux).expect("secure_sign");
    });
    (sess0.take_wire_capture(), sess1.take_wire_capture())
}

/// Fixed vs. random secrets over a corrupting/duplicating link: the raw
/// wire frames (headers, retransmissions and all) must have identical
/// shape across classes and indistinguishable byte distributions — i.e.
/// retry traffic is a function of the seeded fault schedule, never of the
/// secrets being carried.
#[test]
fn session_fault_wire_transcript_is_plaintext_independent() {
    let half = 1i64 << (Q1_BITS - 1);
    let fixed: Vec<i64> =
        (0..VALUES_PER_TRIAL).map(|i| (i as i64 * 37 % half) - half / 2).collect();

    let mut class_a = Vec::with_capacity(TRIALS);
    let mut class_b = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS as u64 {
        let mut rng = StdRng::seed_from_u64(0xfa11_b0b0 + trial);
        let random: Vec<i64> =
            (0..VALUES_PER_TRIAL).map(|_| rng.gen_range(-half / 2..half / 2)).collect();
        class_a.push(captured_faulty_sign_run(&fixed, trial));
        class_b.push(captured_faulty_sign_run(&random, trial));
    }

    // Shape equality per trial: the same fault schedule produces the same
    // frame-size sequence whatever the plaintext. (Across trials the
    // schedules differ, so shapes are compared A-vs-B within each trial.)
    for (trial, (a, b)) in class_a.iter().zip(&class_b).enumerate() {
        assert_eq!(
            shape(a),
            shape(b),
            "trial {trial}: wire frame shape depends on the secret input"
        );
    }

    let (chi2, df) = chi2_two_sample(&byte_histogram(&class_a), &byte_histogram(&class_b));
    eprintln!("faulty-link fixed-vs-random wire transcript: chi2 = {chi2:.1}, df = {df}");
    assert!(df >= 64, "wire alphabet unexpectedly narrow: df = {df}");
    assert!(
        chi2 < CHI2_THRESHOLD,
        "wire transcripts differ between secret classes under faults: \
         chi2 = {chi2:.1} over {df} df (threshold {CHI2_THRESHOLD})"
    );
}

// ---------------------------------------------------------------------------
// Batched online-pass transcripts
// ---------------------------------------------------------------------------

/// Batched trials (each is two full prepared inferences, one per class).
const BATCH_TRIALS: usize = 8;
/// Images per batched pass.
const BATCH_B: usize = 2;

/// The trained model the batched-transcript checks run, built once.
fn batched_leakage_model() -> &'static QuantModel {
    static CELL: std::sync::OnceLock<QuantModel> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let data = SyntheticVision::tiny(4, 4021);
        let mut net = FloatNet::init(&zoo::tiny_cnn(4), 4022).expect("valid spec");
        net.train_epochs(&data, 2, 8, 0.05);
        QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())
            .expect("quantization succeeds")
    })
}

/// Captures both parties' outbound transcripts of one **batched** online
/// pass (`PreparedModel::run_batch` over `images`) under MaskedMux, with
/// fresh offline material per trial. The capture starts *after*
/// preparation: preparation is image-independent by construction, the
/// online pass is what must not leak the batch contents.
fn captured_batched_run(images: &[Vec<f32>], trial: u64) -> (Transcript, Transcript) {
    let mut cfg = ProtocolConfig::paper(16);
    cfg.relu_mode = ReluMode::MaskedMux;
    cfg.setup_seed ^= 0x6a7c_b100 + trial;
    let model = batched_leakage_model().clone();
    let images: Arc<Vec<Vec<f32>>> = Arc::new(images.to_vec());
    let b = images.len();
    run_pair(&cfg, move |ctx| {
        let mut prepared = PreparedModel::prepare(ctx, &model).expect("prepare");
        let refs: Vec<&[f32]> = images.iter().map(Vec::as_slice).collect();
        let input = match ctx.id {
            PartyId::User => BatchInput::User(&refs),
            PartyId::ModelProvider => BatchInput::Provider { batch: b },
        };
        ctx.ep.start_capture();
        prepared.run_batch(ctx, input).expect("batched inference");
        ctx.ep.take_capture()
    })
}

/// A fixed image batch vs. a fresh random batch per trial: the batched
/// online pass stacks all `B` images into shared GEMMs, and its wire
/// transcript must carry no signal about the batch contents — identical
/// message shapes and χ²-indistinguishable byte distributions, exactly
/// the guarantee the per-image transcript tests establish for `B = 1`.
#[test]
fn batched_online_transcript_is_image_independent() {
    let n_in = {
        let data = SyntheticVision::tiny(4, 4021);
        data.test()[0].image.len()
    };
    let fixed: Vec<Vec<f32>> = (0..BATCH_B)
        .map(|i| (0..n_in).map(|p| ((p + 7 * i) % 13) as f32 / 13.0).collect())
        .collect();

    let mut class_a = Vec::with_capacity(BATCH_TRIALS);
    let mut class_b = Vec::with_capacity(BATCH_TRIALS);
    for trial in 0..BATCH_TRIALS as u64 {
        let mut rng = StdRng::seed_from_u64(0xba7c_4000 + trial);
        let random: Vec<Vec<f32>> =
            (0..BATCH_B).map(|_| (0..n_in).map(|_| rng.gen_range(0.0f32..1.0)).collect()).collect();
        class_a.push(captured_batched_run(&fixed, trial));
        class_b.push(captured_batched_run(&random, trial));
    }

    // Shape equality: the batched message schedule (one exchange per
    // layer, sizes scaled by B) is public protocol structure, identical
    // for every trial of both classes.
    let reference = shape(&class_a[0]);
    for t in class_a.iter().chain(class_b.iter()) {
        assert_eq!(shape(t), reference, "batched transcript shape depends on the images");
    }

    let (chi2, df) = chi2_two_sample(&byte_histogram(&class_a), &byte_histogram(&class_b));
    eprintln!("batched fixed-vs-random transcript: chi2 = {chi2:.1}, df = {df}");
    assert!(df >= 64, "wire alphabet unexpectedly narrow: df = {df}");
    assert!(
        chi2 < CHI2_THRESHOLD,
        "batched transcript byte distributions differ between image classes: \
         chi2 = {chi2:.1} over {df} df (threshold {CHI2_THRESHOLD})"
    );
}

// ---------------------------------------------------------------------------
// Telemetry hygiene
// ---------------------------------------------------------------------------

/// Every event name the server's flight recorder may emit (plus the
/// Chrome metadata record). A dump containing any other name is treated
/// as a leak until it is reviewed and added here.
const FLIGHTREC_NAMES: &[&str] = &[
    "process_name",
    "admitted",
    "hello",
    "request",
    "queue_wait",
    "online_pass",
    "reaping",
    "reaped",
    "rejected",
    "faulted",
];
/// Allowed event categories ("" is the Chrome metadata record).
const FLIGHTREC_CATS: &[&str] = &["", "lifecycle", "slo"];
/// Allowed argument keys across all flight-recorder events.
const FLIGHTREC_ARG_KEYS: &[&str] =
    &["name", "stream", "reason", "model", "count", "batch", "q1_bits", "why"];

/// A telemetry string is *structural*: short, printable ASCII, no binary
/// or encoded payload can hide in it.
fn assert_structural_string(context: &str, s: &str) {
    assert!(s.len() <= 256, "{context}: suspiciously long string ({} bytes): {s:?}", s.len());
    assert!(
        s.chars().all(|c| (' '..='~').contains(&c)),
        "{context}: non-printable or non-ASCII bytes: {s:?}"
    );
}

/// Metric names are dotted identifiers; anything else in the exposition
/// name position means arbitrary data is flowing into the admin surface.
fn assert_metric_name(name: &str) {
    // A histogram bucket sample carries one `le` label with a numeric bound.
    let bare = name.split_once('{').map_or(name, |(n, rest)| {
        let label = rest.strip_suffix('}').unwrap_or_else(|| panic!("unterminated label: {name}"));
        let bound = label
            .strip_prefix("le=\"")
            .and_then(|b| b.strip_suffix('"'))
            .unwrap_or_else(|| panic!("unexpected label on {name}"));
        assert!(
            bound == "+Inf" || bound.parse::<f64>().is_ok(),
            "non-numeric bucket bound on {name}"
        );
        n
    });
    assert!(
        !bare.is_empty() && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_'),
        "metric name with unexpected characters: {name:?}"
    );
}

/// The `/metrics` body must be *only* names and numbers: a schema line,
/// `# TYPE` comments, and `name value` samples.
fn assert_metrics_body_hygienic(body: &str) {
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# SCHEMA ") {
            assert!(rest.parse::<u64>().is_ok(), "bad schema line: {line:?}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            assert_metric_name(name);
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram") && it.next().is_none(),
                "bad TYPE line: {line:?}"
            );
        } else {
            let mut it = line.split_whitespace();
            let (name, value) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            assert_metric_name(name);
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample value: {line:?}");
            assert!(it.next().is_none(), "trailing tokens on sample line: {line:?}");
        }
    }
}

/// The `/sessions` table: a fixed header, then numbers and a closed
/// state vocabulary — never request contents.
fn assert_sessions_body_hygienic(body: &str) {
    let mut lines = body.lines();
    assert_eq!(
        lines.next(),
        Some(
            "stream age_ms idle_ms state retransmits reconnects naks corrupt duplicates gaps misrouted"
        ),
        "unexpected /sessions header"
    );
    for row in lines.filter(|l| !l.is_empty()) {
        for (i, tok) in row.split_whitespace().enumerate() {
            if i == 3 {
                assert!(matches!(tok, "open" | "closing"), "unexpected state {tok:?} in {row:?}");
            } else {
                assert!(
                    tok.parse::<u64>().is_ok(),
                    "non-numeric /sessions field {tok:?} in {row:?}"
                );
            }
        }
    }
}

/// Walks a flight-recorder dump and asserts every event name, category,
/// argument key and argument value is structural (shapes, counts,
/// timings, short reason strings) — no share values, no wire payloads.
fn assert_flightrec_hygienic(doc: &aq2pnn_obs::json::Json) {
    use aq2pnn_obs::json::Json;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("flightrec dump without traceEvents");
    };
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).expect("event name");
        assert!(FLIGHTREC_NAMES.contains(&name), "unreviewed flightrec event name {name:?}");
        let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("");
        assert!(FLIGHTREC_CATS.contains(&cat), "unreviewed flightrec category {cat:?}");
        let Some(Json::Obj(args)) = ev.get("args") else { continue };
        for (key, value) in args {
            assert!(
                FLIGHTREC_ARG_KEYS.contains(&key.as_str()),
                "unreviewed flightrec arg key {key:?} on {name}"
            );
            match value {
                Json::Num(_) => {}
                Json::Str(s) => assert_structural_string(&format!("{name}.{key}"), s),
                other => panic!("non-scalar flightrec arg {key:?} on {name}: {other:?}"),
            }
        }
    }
}

/// End to end: a real server with the admin endpoint, SLO tracking and
/// flight recorder enabled serves one clean client and reaps one idle
/// loris; every admin response body and the resulting flightrec dump
/// must contain only public structure (names, numbers, shapes, counts,
/// timings) under the allowlists above.
#[test]
fn admin_surface_and_flightrec_dumps_carry_public_structure_only() {
    use aq2pnn_server::{
        demo_model, mem_acceptor, run_client, ClientConfig, InferenceServer, ModelRegistry,
        ServerConfig, ServerObs,
    };
    use aq2pnn_transport::{http_get, Frame, FrameKind, SessionConfig};

    let dir = std::env::temp_dir().join(format!("aq2pnn-leak-flightrec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (data, model) = demo_model("tiny").expect("demo model");
    let mut registry = ModelRegistry::new();
    registry.insert("tiny", model.clone());
    let session = SessionConfig { probe_interval: Duration::from_millis(25), ..Default::default() };
    let cfg = ServerConfig {
        max_sessions: 4,
        queue_depth: 4,
        admission_timeout: Duration::from_secs(30),
        idle_timeout: Duration::from_millis(300),
        reap_interval: Duration::from_millis(10),
        session,
        slo_ms: Some(60_000),
        flightrec_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let (acceptor, dial) = mem_acceptor();
    let obs = ServerObs { metrics: MetricsRegistry::new(), ..ServerObs::default() };
    let mut server = InferenceServer::start(Box::new(acceptor), cfg, registry, obs);
    let admin = server.start_admin("127.0.0.1:0").expect("admin endpoint");

    // One clean client (populates SLO histograms and session counters)…
    let images = data.test_images();
    let refs: Vec<&[f32]> = images.iter().take(1).map(Vec::as_slice).collect();
    let ccfg = ClientConfig {
        model: "tiny".into(),
        q1_bits: 16,
        batch: 1,
        session,
        admission_timeout: Duration::from_secs(30),
        io_deadline: Duration::from_secs(30),
    };
    run_client(dial.connect().expect("connect"), &ccfg, &model, &refs).expect("clean run");

    // …and one admitted-then-silent loris, reaped on the idle timeout.
    let loris = dial.connect().expect("connect");
    loris.send(Frame::control(FrameKind::Hello, 0, 0).encode().into()).expect("hello");
    let verdict = loris.recv(Some(Duration::from_secs(2))).expect("admission verdict");
    let loris_stream = Frame::decode(&verdict).expect("frame").seq;
    let dump_path = dir.join(format!("flightrec-{loris_stream}.json"));
    let deadline = Instant::now() + Duration::from_secs(20);
    while !dump_path.exists() {
        assert!(Instant::now() < deadline, "timed out waiting for the loris flightrec dump");
        std::thread::sleep(Duration::from_millis(10));
    }

    let deadline = Duration::from_secs(2);
    let metrics = http_get(admin, "/metrics", deadline).expect("/metrics");
    assert_metrics_body_hygienic(&metrics);
    let sessions = http_get(admin, "/sessions", deadline).expect("/sessions");
    assert_sessions_body_hygienic(&sessions);
    let health = http_get(admin, "/healthz", deadline).expect("/healthz");
    assert!(
        matches!(health.trim(), "ok" | "overloaded" | "draining"),
        "unexpected /healthz body: {health:?}"
    );

    let dump = std::fs::read_to_string(&dump_path).expect("read dump");
    let doc = aq2pnn_obs::json::Json::parse(&dump).expect("dump parses");
    assert_flightrec_hygienic(&doc);

    let _ = server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// dudect-lite timing
// ---------------------------------------------------------------------------

/// Samples per class per attempt.
const TIMING_SAMPLES: usize = 400;
/// Inner iterations batched into one sample (amortizes timer granularity).
const TIMING_BATCH: usize = 64;
/// Fraction of the slowest samples cropped per class before the t-test
/// (dudect's percentile pre-processing; strips scheduler/interrupt tails).
const CROP_FRACTION: f64 = 0.10;
/// |t| acceptance threshold. dudect flags a leak at |t| > 4.5 with millions
/// of samples; at our sample counts, honest constant-time code on a noisy
/// shared CI host still shows |t| of a few units, so the gate is
/// deliberately loose — it catches input-dependent *branches* (orders of
/// magnitude in t), not picosecond microarchitectural residue.
const T_THRESHOLD: f64 = 15.0;
/// Measurement attempts before declaring failure (fresh samples each time;
/// a single noisy attempt must not fail CI).
const TIMING_RETRIES: usize = 5;

/// Welch's t statistic between two sample sets.
fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var =
        |s: &[f64], m: f64| s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (s.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let denom = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (ma - mb) / denom
    }
}

/// Drops the slowest `CROP_FRACTION` of samples.
fn crop(mut samples: Vec<f64>) -> Vec<f64> {
    samples.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    let keep = ((samples.len() as f64) * (1.0 - CROP_FRACTION)).ceil() as usize;
    samples.truncate(keep.max(2));
    samples
}

/// Interleaved fixed-vs-variable measurement of `f` over per-class input
/// pools; returns the cropped Welch t statistic. `inputs[class]` holds
/// `TIMING_SAMPLES` pre-generated input vectors; each sample times
/// `TIMING_BATCH` consecutive calls.
fn measure_classes<T, F: Fn(&T) -> u64>(inputs: &[Vec<T>; 2], f: F) -> f64 {
    let mut times: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    // Interleave A/B samples so slow drifts (thermal, frequency scaling)
    // hit both classes equally.
    for (ia, ib) in inputs[0].iter().zip(&inputs[1]) {
        for (class, input) in [(0, ia), (1, ib)] {
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..TIMING_BATCH {
                acc = acc.wrapping_add(f(black_box(input)));
            }
            let dt = start.elapsed().as_nanos() as f64;
            black_box(acc);
            times[class].push(dt);
        }
    }
    let [a, b] = times;
    welch_t(&crop(a), &crop(b))
}

/// Runs `attempt` up to [`TIMING_RETRIES`] times, passing if any attempt's
/// |t| clears the threshold; reports the best statistic on failure.
fn assert_constant_time(name: &str, mut attempt: impl FnMut() -> f64) {
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_RETRIES {
        let t = attempt().abs();
        best = best.min(t);
        if t < T_THRESHOLD {
            eprintln!("{name}: |t| = {t:.2} (threshold {T_THRESHOLD})");
            return;
        }
    }
    panic!("{name}: timing distinguishes input classes, best |t| = {best:.1} over {TIMING_RETRIES} attempts (threshold {T_THRESHOLD})");
}

/// `sign_from_codes` must take the same time whether the comparison is
/// decided at the first group (random codes) or ties all the way down
/// (all-equal codes) — the classic first-difference `memcmp` leak.
#[test]
fn sign_from_codes_timing_is_input_independent() {
    const GROUPS: usize = 8;
    let mut rng = StdRng::seed_from_u64(0x00d0_dec7);
    let all_eq: Vec<Vec<u64>> =
        (0..TIMING_SAMPLES).map(|_| (0..GROUPS).map(|_| ct::cmp_code(3, 3)).collect()).collect();
    let random: Vec<Vec<u64>> = (0..TIMING_SAMPLES)
        .map(|_| {
            (0..GROUPS)
                .map(|_| ct::cmp_code(rng.gen_range(0u64..4), rng.gen_range(0u64..4)))
                .collect()
        })
        .collect();
    let inputs = [all_eq, random];
    assert_constant_time("sign_from_codes", || {
        measure_classes(&inputs, |codes: &Vec<u64>| u64::from(sign_from_codes(codes)))
    });
}

/// The `Ring::pow` square-and-multiply ladder must not leak the exponent's
/// Hamming weight or bit pattern: all-zero exponents vs. random exponents.
/// ℓ = 31 exercises the dynamic-width ladder.
#[test]
fn ring_pow_timing_is_exponent_independent() {
    ring_pow_timing_check(31, "Ring::pow (dyn ladder)", 0x90f1);
}

/// Same check on the ℓ = 24 monomorphized ladder — the width-specialized
/// path that serves the OT-flow exactly where the group LUT no longer
/// applies (ℓ > 20). The truncated trip count and the branch-free
/// high-exponent fold must stay exponent-independent.
#[test]
fn ring_pow_specialized_ladder_timing_is_exponent_independent() {
    ring_pow_timing_check(24, "Ring::pow (specialized ladder)", 0x90f2);
}

fn ring_pow_timing_check(bits: u32, name: &str, seed: u64) {
    let ring = Ring::new(bits);
    let mut rng = StdRng::seed_from_u64(seed);
    let zero_exp: Vec<(u64, u64)> =
        (0..TIMING_SAMPLES).map(|_| (ring.reduce(rng.gen()), 0u64)).collect();
    let rand_exp: Vec<(u64, u64)> =
        (0..TIMING_SAMPLES).map(|_| (ring.reduce(rng.gen()), rng.gen())).collect();
    let inputs = [zero_exp, rand_exp];
    assert_constant_time(name, || {
        measure_classes(&inputs, |&(base, exp): &(u64, u64)| ring.pow(base, exp))
    });
}
