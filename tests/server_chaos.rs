//! Chaos soak for the multi-tenant inference server (ISSUE: robustness).
//!
//! Every test here drives a real [`InferenceServer`] over the in-process
//! [`mem_acceptor`] harness with real concurrent clients, and asserts the
//! three core robustness properties end to end:
//!
//! 1. **Bit-identical isolation** — clients on clean or *recoverable*
//!    lossy links (drop/delay/duplicate/corrupt, repaired by the session
//!    layer) produce logits bit-identical to an unfaulted reference run,
//!    regardless of what other sessions' links are doing.
//! 2. **Typed failure** — faulted, shed, version-skewed and garbage
//!    clients get a typed error within a bounded deadline; nothing hangs.
//! 3. **Zero leakage** — after every scenario the server returns to zero
//!    active sessions and zero registered dealer lanes, and the clean
//!    sessions' per-stream `session.<id>.*` recovery counters stay at 0.
//!
//! Fault schedules are seeded and deterministic ([`FaultPlan`]); the seed
//! scan helper below pins schedules that keep the single unprotected raw
//! admission frame (the client `Hello`, send index 0) intact while
//! guaranteeing a corruption lands inside the reliability-protected
//! window, so no test depends on luck.
//!
//! The `#[ignore]`d matrix at the bottom is the heavy release-mode soak
//! run by the CI `fault-matrix` job via `--include-ignored`.

use aq2pnn::dealer::{DealerConfig, ExhaustionPolicy};
use aq2pnn_nn::quant::QuantModel;
use aq2pnn_obs::MetricsRegistry;
use aq2pnn_server::{
    demo_model, mem_acceptor, run_client, ClientConfig, ClientError, ClientRun, InferenceServer,
    MemConnector, ModelRegistry, ServerConfig, ServerObs,
};
use aq2pnn_transport::{
    session_metric_name, FaultAction, FaultPlan, FaultyTransport, Frame, FrameKind, SessionConfig,
};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One shared tiny demo model per test binary (training is the slow part).
fn fixture() -> &'static (Vec<Vec<f32>>, QuantModel) {
    static FIXTURE: OnceLock<(Vec<Vec<f32>>, QuantModel)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (data, model) = demo_model("tiny").expect("demo model");
        (data.test_images(), model)
    })
}

fn images(n: usize) -> Vec<&'static [f32]> {
    fixture().0.iter().take(n).map(Vec::as_slice).collect()
}

/// Session tuning shared by both sides: fast probes so lossy-link repair
/// and reaper tests converge quickly in debug builds.
fn fast_session() -> SessionConfig {
    SessionConfig { probe_interval: Duration::from_millis(25), ..SessionConfig::default() }
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        max_sessions: 4,
        queue_depth: 4,
        admission_timeout: Duration::from_secs(5),
        io_deadline: Duration::from_secs(30),
        session_deadline: Duration::from_secs(120),
        idle_timeout: Duration::from_secs(30),
        reap_interval: Duration::from_millis(10),
        drain_timeout: Duration::from_secs(10),
        session: fast_session(),
        dealer: None,
        ..ServerConfig::default()
    }
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        model: "tiny".into(),
        q1_bits: 16,
        batch: 1,
        session: fast_session(),
        admission_timeout: Duration::from_secs(5),
        io_deadline: Duration::from_secs(30),
    }
}

fn start(cfg: ServerConfig) -> (InferenceServer, MemConnector, MetricsRegistry) {
    let (acceptor, dial) = mem_acceptor();
    let metrics = MetricsRegistry::new();
    let mut registry = ModelRegistry::new();
    registry.insert("tiny", fixture().1.clone());
    let obs = ServerObs { metrics: metrics.clone(), ..ServerObs::default() };
    let server = InferenceServer::start(Box::new(acceptor), cfg, registry, obs);
    (server, dial, metrics)
}

fn clean_run(dial: &MemConnector, n: usize) -> Result<ClientRun, ClientError> {
    run_client(dial.connect().expect("connect"), &client_cfg(), &fixture().1, &images(n))
}

fn wait_until(what: &str, budget: Duration, mut ready: impl FnMut() -> bool) {
    let deadline = Instant::now() + budget;
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Scans seeds for a lossy plan that (a) passes the raw admission `Hello`
/// (send index 0 — the one frame outside session reliability) and
/// (b) corrupts at least one frame inside the first 15 sends, so the
/// server-side repair counters for this stream are *guaranteed* nonzero.
fn lossy_plan(seed0: u64) -> FaultPlan {
    let mut seed = seed0;
    loop {
        let plan = FaultPlan::lossy(seed);
        let hello_ok = plan.action(0) == FaultAction::Pass;
        let early_corrupt = (1..=15).any(|i| plan.action(i) == FaultAction::Corrupt);
        if hello_ok && early_corrupt {
            return plan;
        }
        seed = seed.wrapping_add(1);
    }
}

/// The fault-evidence fields every *clean* stream must keep at zero.
///
/// Deliberately NOT the full telemetry set: `naks_sent`, `retransmits`
/// and `duplicates` double as silence probes and can legitimately tick on
/// a healthy link whenever the peer is slow (concurrent debug-mode 2PC is
/// exactly that), whereas a CRC failure, a misrouted frame or a reconnect
/// can only come from actual link faults.
const RECOVERY_FIELDS: &[&str] = &["corrupt_frames", "misrouted", "reconnects"];

/// Asserts the server-side recovery counters for `stream` are all zero.
fn assert_stream_untouched(metrics: &MetricsRegistry, stream: u64) {
    let snap = metrics.snapshot();
    for field in RECOVERY_FIELDS {
        let name = session_metric_name(stream, field);
        let v = snap.counters.get(&name).copied().unwrap_or(0);
        assert_eq!(v, 0, "clean stream {stream} has nonzero {name} = {v}");
    }
}

fn assert_no_leaks(server: &InferenceServer) {
    wait_until("all sessions to unwind", Duration::from_secs(10), || server.active_sessions() == 0);
    assert_eq!(server.dealer_pools(), 0, "dealer lanes leaked");
}

// ---------------------------------------------------------------------------
// Clean concurrency: many tenants, one shared template + dealer hub.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clean_clients_complete_bit_identically() {
    let cfg = ServerConfig {
        dealer: Some(DealerConfig { depth: 8, policy: ExhaustionPolicy::GenerateInline }),
        ..server_cfg()
    };
    let (mut server, dial, _metrics) = start(cfg);

    let reference = clean_run(&dial, 2).expect("reference run");
    assert_eq!(reference.logits.len(), 2);

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let dial = dial.clone();
            std::thread::spawn(move || clean_run(&dial, 2))
        })
        .collect();
    let mut streams = vec![reference.stream];
    for h in handles {
        let run = h.join().expect("client thread").expect("clean client");
        assert_eq!(run.logits, reference.logits, "concurrent clean run diverged");
        streams.push(run.stream);
    }
    streams.sort_unstable();
    streams.dedup();
    assert_eq!(streams.len(), 5, "stream IDs must be unique per session");

    assert_no_leaks(&server);
    let c = server.counters();
    assert_eq!(c.admitted, 5);
    assert_eq!(c.completed, 5);
    assert_eq!(c.shed, 0);
    assert_eq!(c.faulted, 0);
    assert_eq!(c.reaped, 0);
    let report = server.drain();
    assert!(report.clean, "nothing in flight, drain must be clean");
}

// ---------------------------------------------------------------------------
// Recoverable faults: lossy links repair to bit-identical logits, and the
// per-stream telemetry proves the faults never bled across sessions.
// ---------------------------------------------------------------------------

#[test]
fn lossy_links_recover_bit_identically_and_clean_streams_stay_untouched() {
    let (mut server, dial, metrics) = start(server_cfg());
    let reference = clean_run(&dial, 2).expect("reference run");

    let lossy = |seed0: u64| {
        let dial = dial.clone();
        std::thread::spawn(move || {
            let plan = lossy_plan(seed0);
            let link = Arc::new(FaultyTransport::new(dial.connect().expect("connect"), plan));
            let stats_probe = Arc::clone(&link);
            let out = run_client(link, &client_cfg(), &fixture().1, &images(2));
            (out, stats_probe.stats())
        })
    };
    let faulty = [lossy(0xC0A1), lossy(0xC0A2)];
    let clean = {
        let dial = dial.clone();
        std::thread::spawn(move || clean_run(&dial, 2))
    };

    let clean_out = clean.join().expect("clean thread").expect("clean client");
    assert_eq!(clean_out.logits, reference.logits);
    let mut lossy_streams = Vec::new();
    for h in faulty {
        let (out, stats) = h.join().expect("lossy thread");
        let run = out.expect("lossy link is recoverable, client must still succeed");
        assert_eq!(run.logits, reference.logits, "repaired run diverged from reference");
        assert!(stats.corrupted > 0, "seed scan guaranteed an early corrupt");
        lossy_streams.push(run.stream);
    }

    assert_no_leaks(&server);

    // Isolation: the faulted streams did repair work server-side, the
    // clean streams' recovery counters are untouched.
    let snap = metrics.snapshot();
    for stream in lossy_streams {
        let corrupt =
            snap.counters.get(&session_metric_name(stream, "corrupt_frames")).copied().unwrap_or(0);
        assert!(corrupt > 0, "server never saw the injected corruption on stream {stream}");
    }
    assert_stream_untouched(&metrics, reference.stream);
    assert_stream_untouched(&metrics, clean_out.stream);

    let c = server.counters();
    assert_eq!(c.completed, 4);
    assert_eq!(c.faulted, 0, "recoverable faults must not fault sessions");
    server.drain();
}

// ---------------------------------------------------------------------------
// Fatal faults: a mid-protocol disconnect is a typed error for that client
// and invisible to every other session.
// ---------------------------------------------------------------------------

#[test]
fn mid_protocol_disconnect_is_typed_and_isolated() {
    let (mut server, dial, metrics) = start(server_cfg());
    let reference = clean_run(&dial, 2).expect("reference run");

    let doomed = {
        let dial = dial.clone();
        std::thread::spawn(move || {
            // `MemTransport` cannot reconnect, so a cable pull at send #10
            // (well past admission, inside the protocol) is fatal.
            let plan = FaultPlan { disconnect_at: vec![10], ..FaultPlan::clean() };
            let link = Arc::new(FaultyTransport::new(dial.connect().expect("connect"), plan));
            run_client(link, &client_cfg(), &fixture().1, &images(2))
        })
    };
    let clean = {
        let dial = dial.clone();
        std::thread::spawn(move || clean_run(&dial, 2))
    };

    let err = doomed.join().expect("doomed thread").expect_err("disconnect must fail");
    assert!(
        matches!(err, ClientError::Transport(_)),
        "disconnect must surface as a typed transport error, got {err}"
    );
    let clean_out = clean.join().expect("clean thread").expect("unaffected client");
    assert_eq!(clean_out.logits, reference.logits, "bystander session diverged");

    assert_no_leaks(&server);
    assert_stream_untouched(&metrics, reference.stream);
    assert_stream_untouched(&metrics, clean_out.stream);
    let c = server.counters();
    assert_eq!(c.admitted, 3);
    assert_eq!(c.completed, 2);
    assert_eq!(
        c.faulted + c.rejected,
        1,
        "the disconnected session must be billed as a client fault"
    );
    assert_eq!(c.reaped, 0);
    server.drain();
}

// ---------------------------------------------------------------------------
// Slow-loris: a client that connects and goes silent is reaped on the idle
// deadline, its slot reclaimed, with live sessions unaffected.
// ---------------------------------------------------------------------------

#[test]
fn slow_loris_is_reaped_on_the_idle_deadline() {
    let cfg = ServerConfig {
        // Long admission timeout so the *reaper* (idle deadline), not the
        // admission recv timeout, is what must catch the loris.
        admission_timeout: Duration::from_secs(30),
        idle_timeout: Duration::from_millis(250),
        ..server_cfg()
    };
    let (mut server, dial, _metrics) = start(cfg);

    // The loris completes admission, then never speaks again.
    let loris = dial.connect().expect("connect");
    loris.send(Frame::control(FrameKind::Hello, 0, 0).encode().into()).expect("hello");
    let verdict = loris.recv(Some(Duration::from_secs(2))).expect("verdict");
    assert_eq!(Frame::decode(&verdict).expect("frame").kind, FrameKind::Hello);

    // A live client served while the loris squats proves no head-of-line
    // blocking.
    let run = clean_run(&dial, 1).expect("live client");
    assert_eq!(run.logits.len(), 1);

    wait_until("loris to be reaped", Duration::from_secs(5), || server.counters().reaped >= 1);
    assert_no_leaks(&server);
    let c = server.counters();
    assert_eq!(c.reaped, 1);
    assert_eq!(c.completed, 1);
    assert_eq!(c.faulted, 0, "a reaped session must not be billed as a client fault");
    drop(loris);
    server.drain();
}

// ---------------------------------------------------------------------------
// Overload: admission beyond max_sessions + queue_depth is a typed Shed
// answered immediately — never a hang, never a timeout-as-signal.
// ---------------------------------------------------------------------------

#[test]
fn overload_is_shed_with_a_typed_error_immediately() {
    let cfg = ServerConfig { max_sessions: 1, queue_depth: 0, ..server_cfg() };
    let (mut server, dial, _metrics) = start(cfg);

    let occupant = {
        let dial = dial.clone();
        std::thread::spawn(move || clean_run(&dial, 4))
    };
    wait_until("the occupant to be admitted", Duration::from_secs(5), || {
        server.counters().admitted == 1 && server.active_sessions() == 1
    });

    let started = Instant::now();
    let err = clean_run(&dial, 1).expect_err("second client must be declined");
    let elapsed = started.elapsed();
    assert_eq!(err, ClientError::Shed);
    assert!(
        elapsed < Duration::from_secs(2),
        "shed must be immediate, took {elapsed:?} (admission timeout is 5 s)"
    );

    let run = occupant.join().expect("occupant thread").expect("occupant completes");
    assert_eq!(run.logits.len(), 4);
    assert_no_leaks(&server);
    let c = server.counters();
    assert_eq!(c.shed, 1);
    assert_eq!(c.completed, 1);
    server.drain();
}

// ---------------------------------------------------------------------------
// Hostile admission traffic: garbage bytes and version-skewed peers are
// rejected as typed admission failures without collateral damage.
// ---------------------------------------------------------------------------

#[test]
fn garbage_and_version_skew_admissions_are_rejected_without_collateral() {
    let (mut server, dial, _metrics) = start(server_cfg());

    // Not a frame at all.
    let garbage = dial.connect().expect("connect");
    garbage.send(bytes::Bytes::from_static(b"GET / HTTP/1.1\r\n\r\n")).expect("send");
    wait_until("garbage to be rejected", Duration::from_secs(5), || {
        server.counters().rejected >= 1
    });

    // A well-formed frame from a v1 peer: version byte rewritten. The
    // version check precedes the checksum, so this is a typed
    // VersionMismatch server-side, not generic corruption.
    let skewed = dial.connect().expect("connect");
    let mut old = Frame::control(FrameKind::Hello, 0, 0).encode();
    old[2] = 1;
    skewed.send(old.into()).expect("send");
    wait_until("version skew to be rejected", Duration::from_secs(5), || {
        server.counters().rejected >= 2
    });

    // The server is unharmed: a real client still gets served.
    let run = clean_run(&dial, 1).expect("client after hostile traffic");
    assert_eq!(run.logits.len(), 1);
    assert_no_leaks(&server);
    let c = server.counters();
    assert_eq!(c.rejected, 2);
    assert_eq!(c.completed, 1);
    assert_eq!(c.faulted, 0);
    server.drain();
}

// An unknown model name is a typed rejection carried back to the client.
#[test]
fn unknown_model_requests_are_rejected_with_the_reason() {
    let (mut server, dial, _metrics) = start(server_cfg());
    let cfg = ClientConfig { model: "resnet152".into(), ..client_cfg() };
    let err = run_client(dial.connect().expect("connect"), &cfg, &fixture().1, &images(1))
        .expect_err("unknown model must be rejected");
    match err {
        ClientError::Rejected(reason) => assert!(reason.contains("resnet152"), "{reason}"),
        other => panic!("expected Rejected, got {other}"),
    }
    assert_no_leaks(&server);
    assert_eq!(server.counters().rejected, 1);
    server.drain();
}

// ---------------------------------------------------------------------------
// Live telemetry: concurrent admin scrapes during load return consistent
// schema-v4 snapshots without blocking any worker, and a reaped session
// leaves a parseable flight-recorder dump covering its final second.
// ---------------------------------------------------------------------------

/// A scraper thread hammering `/metrics`, `/sessions` and `/healthz`
/// until told to stop. Asserts every `/metrics` body is schema-v4-valid
/// and counters stay monotone across scrapes; panics propagate through
/// the join.
fn spawn_scraper(
    admin: std::net::SocketAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let deadline = Duration::from_secs(2);
        let mut scrapes = 0u64;
        let mut last_admitted = 0u64;
        while !stop.load(std::sync::atomic::Ordering::SeqCst) {
            let body = aq2pnn_transport::http_get(admin, "/metrics", deadline).expect("/metrics");
            assert_eq!(
                aq2pnn_obs::text_schema_version(&body),
                Some(aq2pnn_obs::METRICS_SCHEMA_VERSION),
                "scrape must declare the current schema"
            );
            let snap = aq2pnn_obs::parse_text(&body).expect("exposition parses");
            let admitted = snap.counters.get("server.sessions_admitted").copied().unwrap_or(0);
            assert!(admitted >= last_admitted, "admitted counter went backwards");
            last_admitted = admitted;
            if admitted > 0 {
                assert!(snap.gauges.contains_key("server.inflight"), "v4 inflight gauge missing");
            }
            let sessions =
                aq2pnn_transport::http_get(admin, "/sessions", deadline).expect("/sessions");
            assert!(sessions.starts_with("stream "), "sessions table must have its header");
            let health = aq2pnn_transport::http_get(admin, "/healthz", deadline).expect("/healthz");
            assert!(
                ["ok", "overloaded", "draining"].contains(&health.trim()),
                "unexpected health verdict {health:?}"
            );
            scrapes += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        scrapes
    })
}

#[test]
fn admin_scrapes_are_consistent_and_reaped_sessions_dump_flight_recorders() {
    let dir = std::env::temp_dir().join(format!("aq2pnn-flightrec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        // Long admission timeout so the reaper's idle deadline is what
        // catches the loris (and attributes the dump).
        admission_timeout: Duration::from_secs(30),
        idle_timeout: Duration::from_millis(300),
        slo_ms: Some(60_000),
        flightrec_dir: Some(dir.clone()),
        ..server_cfg()
    };
    let (mut server, dial, _metrics) = start(cfg);
    let admin = server.start_admin("127.0.0.1:0").expect("admin endpoint");
    let reference = clean_run(&dial, 2).expect("reference run");

    // A loris completes admission, then goes silent until reaped.
    let loris = dial.connect().expect("connect");
    loris.send(Frame::control(FrameKind::Hello, 0, 0).encode().into()).expect("hello");
    let verdict = loris.recv(Some(Duration::from_secs(2))).expect("verdict");
    // The admission reply carries the assigned stream ID in `seq`
    // (control frames always have `stream == 0`).
    let loris_stream = Frame::decode(&verdict).expect("frame").seq;

    // Scrape concurrently while real clients run: the admin surface must
    // never block a session worker.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = spawn_scraper(admin, Arc::clone(&stop));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let dial = dial.clone();
            std::thread::spawn(move || clean_run(&dial, 2))
        })
        .collect();
    for h in handles {
        let run = h.join().expect("client thread").expect("clean client under scraping");
        assert_eq!(run.logits, reference.logits, "scraping perturbed an inference");
    }
    wait_until("loris to be reaped", Duration::from_secs(5), || server.counters().reaped >= 1);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes >= 3, "expected several successful scrapes, got {scrapes}");

    // The reaped loris left a parseable Chrome-trace dump whose events
    // cover the session's final second: the reaper's `reaping` stamp and
    // the terminal `reaped` event land within the last 1000 ms.
    let dump_path = dir.join(format!("flightrec-{loris_stream}.json"));
    wait_until("flight recorder dump", Duration::from_secs(5), || dump_path.exists());
    let text = std::fs::read_to_string(&dump_path).expect("read dump");
    let doc = aq2pnn_obs::json::Json::parse(&text).expect("dump is valid JSON");
    assert_eq!(doc.get("flightrec").and_then(aq2pnn_obs::json::Json::as_u64), Some(1));
    let events = aq2pnn_obs::chrome::parse_chrome_trace(&doc).expect("chrome-trace compatible");
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.pid == loris_stream));
    assert!(events.iter().any(|e| e.name == "admitted"));
    let last = events.iter().fold(0.0f64, |m, e| m.max(e.ts_us + e.dur_us));
    let reaped = events.iter().find(|e| e.name == "reaped").expect("terminal reaped event");
    let reaping = events.iter().find(|e| e.name == "reaping").expect("reaper attribution event");
    assert!(last - reaped.ts_us <= 1_000_000.0, "terminal event must be in the final second");
    assert!(last - reaping.ts_us <= 1_000_000.0, "reaper stamp must be in the final second");

    // Clean completions leave no dumps behind.
    let dumps = std::fs::read_dir(&dir).expect("dump dir").count();
    assert_eq!(dumps, 1, "only the reaped session may dump");

    drop(loris);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admin_rejects_non_loopback_binds_and_unknown_paths() {
    let (mut server, _dial, _metrics) = start(server_cfg());
    assert!(server.start_admin("0.0.0.0:0").is_err(), "admin must refuse non-loopback binds");
    let admin = server.start_admin("127.0.0.1:0").expect("loopback bind");
    let err = aq2pnn_transport::http_get(admin, "/secrets", Duration::from_secs(2))
        .expect_err("unknown paths are 404");
    assert!(format!("{err}").contains("404"), "{err}");
    server.drain();
}

// ---------------------------------------------------------------------------
// The heavy matrix: rounds of mixed clean / lossy / disconnect / loris
// clients under a dealer-enabled server. Release-mode CI soak
// (`fault-matrix` job, `--include-ignored`); far too slow for debug tier-1.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "heavy soak; run in release via the CI fault-matrix job"]
fn chaos_matrix_soak() {
    let dir = std::env::temp_dir().join(format!("aq2pnn-soak-flightrec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        max_sessions: 4,
        queue_depth: 8,
        idle_timeout: Duration::from_millis(400),
        admission_timeout: Duration::from_secs(30),
        dealer: Some(DealerConfig { depth: 8, policy: ExhaustionPolicy::GenerateInline }),
        slo_ms: Some(60_000),
        flightrec_dir: Some(dir.clone()),
        ..server_cfg()
    };
    let (mut server, dial, metrics) = start(cfg);
    let admin = server.start_admin("127.0.0.1:0").expect("admin endpoint");
    // Scrape the admin surface for the whole soak: every snapshot must
    // stay schema-v4-valid and monotone while chaos runs.
    let stop_scraper = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = spawn_scraper(admin, Arc::clone(&stop_scraper));
    let reference = clean_run(&dial, 2).expect("reference run");

    for round in 0..3u64 {
        // A loris squats for this whole round.
        let loris = dial.connect().expect("connect");
        loris.send(Frame::control(FrameKind::Hello, 0, 0).encode().into()).expect("hello");
        let _ = loris.recv(Some(Duration::from_secs(2))).expect("verdict");

        // 2 clean + 3 lossy clients, all of which must complete
        // bit-identically, plus 1 disconnecting client that must fail typed.
        let mut recoverable = Vec::new();
        for _ in 0..2 {
            let dial = dial.clone();
            recoverable.push(std::thread::spawn(move || clean_run(&dial, 2)));
        }
        for i in 0..3u64 {
            let dial = dial.clone();
            recoverable.push(std::thread::spawn(move || {
                let plan = lossy_plan(0x5EED_0000 + round * 16 + i);
                let link = Arc::new(FaultyTransport::new(dial.connect().expect("connect"), plan));
                run_client(link, &client_cfg(), &fixture().1, &images(2))
            }));
        }
        let doomed = {
            let dial = dial.clone();
            std::thread::spawn(move || {
                let plan = FaultPlan { disconnect_at: vec![12 + round], ..FaultPlan::clean() };
                let link = Arc::new(FaultyTransport::new(dial.connect().expect("connect"), plan));
                run_client(link, &client_cfg(), &fixture().1, &images(2))
            })
        };

        for h in recoverable {
            let run = h.join().expect("client thread").expect("recoverable client");
            assert_eq!(run.logits, reference.logits, "round {round}: diverged");
        }
        let err = doomed.join().expect("doomed thread").expect_err("disconnect must fail");
        assert!(matches!(err, ClientError::Transport(_)), "round {round}: {err}");

        wait_until("round loris reap", Duration::from_secs(10), || {
            server.counters().reaped > round
        });
        drop(loris);
        assert_no_leaks(&server);
        // The known-clean reference stream stays untouched through every
        // round of chaos.
        assert_stream_untouched(&metrics, reference.stream);
    }

    let c = server.counters();
    assert_eq!(c.completed, 1 + 3 * 5, "reference + 5 recoverable per round");
    assert_eq!(c.reaped, 3);
    assert_eq!(c.faulted + c.rejected, 3, "one disconnect per round");

    stop_scraper.store(true, std::sync::atomic::Ordering::SeqCst);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes >= 10, "the scraper must have run throughout the soak, got {scrapes}");
    // Every reaped loris left a parseable flight-recorder dump.
    let mut dumps = 0;
    for entry in std::fs::read_dir(&dir).expect("dump dir") {
        let text = std::fs::read_to_string(entry.expect("entry").path()).expect("read dump");
        let doc = aq2pnn_obs::json::Json::parse(&text).expect("dump parses");
        let events = aq2pnn_obs::chrome::parse_chrome_trace(&doc).expect("chrome-trace compatible");
        assert!(!events.is_empty());
        dumps += 1;
    }
    assert!(dumps >= 3, "each reaped loris must dump, got {dumps}");

    let report = server.drain();
    assert!(report.clean);
    let _ = std::fs::remove_dir_all(&dir);
}
