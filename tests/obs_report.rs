//! End-to-end checks of the tracing/metrics layer: a traced tiny-CNN
//! inference must emit one span per layer per protocol stage, the
//! per-layer cost report must reconcile byte-for-byte with the channel
//! statistics, and the Chrome `trace_event` export must round-trip back
//! into the identical report.

use aq2pnn::sim::{run_two_party_traced, PartyObs};
use aq2pnn::substrate::obs::chrome::{chrome_trace, parse_chrome_trace};
use aq2pnn::substrate::obs::json::Json;
use aq2pnn::substrate::obs::report::{CostReport, CAT_LAYER, CAT_OFFLINE, CAT_STAGE};
use aq2pnn::substrate::obs::tracer::SpanRecord;
use aq2pnn::ProtocolConfig;
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_transport::duplex;

fn trained_model(seed: u64) -> (QuantModel, Vec<f32>) {
    let data = SyntheticVision::tiny(4, seed);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), seed + 1).expect("valid spec");
    net.train_epochs(&data, 1, 8, 0.05);
    let q = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())
        .expect("quantization succeeds");
    let image = data.test()[0].image.clone();
    (q, image)
}

/// Runs one traced inference and returns `(per-party spans, per-party
/// total bytes from ChannelStats)`.
fn traced_run() -> ([Vec<SpanRecord>; 2], [u64; 2]) {
    let (model, image) = trained_model(4242);
    let cfg = ProtocolConfig::paper(16);
    let (e0, e1) = duplex();
    let user = PartyObs::enabled();
    let provider = PartyObs::enabled();
    let out = run_two_party_traced(e0, e1, &model, &cfg, &image, user.clone(), provider.clone())
        .expect("traced 2pc inference runs");
    (
        [user.tracer.snapshot(), provider.tracer.snapshot()],
        [out.user_stats.total_bytes(), out.provider_stats.total_bytes()],
    )
}

fn top_layers(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    spans.iter().filter(|s| s.parent.is_none() && s.cat == CAT_LAYER).collect()
}

fn children_of(spans: &[SpanRecord], parent: usize) -> Vec<&SpanRecord> {
    spans.iter().filter(|s| s.parent == Some(parent)).collect()
}

#[test]
fn traced_tiny_cnn_report_reconciles_with_channel_stats() {
    let (spans, totals) = traced_run();

    for (pid, (spans, total)) in spans.iter().zip(&totals).enumerate() {
        // --- One top-level layer span per engine layer, in order. ---
        let layers: Vec<&str> = top_layers(spans).iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            layers,
            vec![
                "input", "conv0", "abrelu1", "maxpool2", "conv3", "abrelu4", "maxpool5", "fc7",
                "abrelu8", "fc9", "output",
            ],
            "party {pid}: unexpected layer timeline"
        );
        // --- Offline spans: one per linear layer, nothing else. ---
        let offline: Vec<&str> =
            spans.iter().filter(|s| s.cat == CAT_OFFLINE).map(|s| s.name.as_str()).collect();
        assert_eq!(offline, vec!["conv0", "conv3", "fc7", "fc9"], "party {pid}");

        // --- Each conv/fc layer has gemm + bnreq stages; each abrelu has
        //     a2bm + ot-flow (+ reveal in the default RevealedSign mode).
        for (i, span) in spans.iter().enumerate() {
            if span.parent.is_some() || span.cat != CAT_LAYER {
                continue;
            }
            let stages: Vec<&str> = children_of(spans, i)
                .iter()
                .filter(|s| s.cat == CAT_STAGE)
                .map(|s| s.name.as_str())
                .collect();
            if span.name.starts_with("conv") || span.name.starts_with("fc") {
                assert_eq!(stages, vec!["gemm", "bnreq"], "party {pid} layer {}", span.name);
            } else if span.name.starts_with("abrelu") {
                assert_eq!(
                    stages,
                    vec!["a2bm", "ot-flow", "reveal"],
                    "party {pid} layer {}",
                    span.name
                );
            }
        }

        // --- Layer spans carry public structure only: ring width + shape.
        // (`paper(16)` runs StayWide: activations stay on Q2 = 16+16 bits.)
        let conv0 = top_layers(spans).into_iter().find(|s| s.name == "conv0").unwrap();
        assert_eq!(conv0.arg_u64("ring_bits"), 32, "party {pid}");
        assert!(conv0.arg("shape").is_some(), "party {pid}: conv0 span missing shape");

        // --- The reconciliation invariant: top-level spans partition the
        //     transcript, so the report total equals the channel total.
        let report = CostReport::from_spans(&[(u32::try_from(pid).unwrap(), spans)]);
        let pid64 = pid as u64;
        assert_eq!(
            report.total_bytes(pid64),
            *total,
            "party {pid}: per-layer report must sum to ChannelStats::total_bytes()"
        );
        assert!(report.offline_total(pid64).bytes > 0, "party {pid}: offline-f traffic traced");
        assert!(report.online_total(pid64).bytes > 0, "party {pid}: online traffic traced");
    }

    // Two-party symmetry: bytes one party sends, the other receives.
    assert_eq!(totals[0], totals[1], "duplex transcript must be symmetric in total");
}

#[test]
fn chrome_export_roundtrips_into_identical_report() {
    let (spans, totals) = traced_run();
    let parties: Vec<(u32, &[SpanRecord])> =
        spans.iter().enumerate().map(|(i, s)| (u32::try_from(i).unwrap(), &s[..])).collect();

    let live = CostReport::from_spans(&parties);
    let doc = chrome_trace(&parties);
    let text = doc.to_string_pretty();
    let parsed = Json::parse(&text).expect("emitted trace.json parses");
    let events = parse_chrome_trace(&parsed).expect("schema-valid Chrome trace");
    let rebuilt = CostReport::from_chrome(&events);

    // Byte/round content is exactly preserved through the JSON round trip.
    for pid in [0u64, 1] {
        assert_eq!(rebuilt.total_bytes(pid), live.total_bytes(pid), "party {pid}");
        assert_eq!(rebuilt.total_bytes(pid), totals[usize::try_from(pid).unwrap()], "party {pid}");
        assert_eq!(rebuilt.online_total(pid).rounds, live.online_total(pid).rounds, "party {pid}");
    }
    assert_eq!(
        rebuilt.rows.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
        live.rows.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
        "row set survives the round trip"
    );

    // The rendered table mentions every layer and both parties.
    let table = live.render();
    for needle in ["conv0", "abrelu1", "fc9", "party 0", "party 1", "total"] {
        assert!(table.contains(needle), "report table missing {needle}:\n{table}");
    }
}
