//! Batched online pass: `PreparedModel::run_batch` over `B` images must
//! recover logits **bit-identical** to `B` sequential `run` calls on the
//! same prepared session — at every batch size, in both share-conversion
//! configs, and at every thread count — and the background dealer must be
//! a pure latency optimization: pooled triples produce the same logits as
//! inline generation, and a strict pool that runs dry surfaces the typed
//! [`ProtocolError::DealerExhausted`], never a panic or a desync.
//!
//! The bit-identity baseline is the *stream position* argument: a lane's
//! offline material is defined by its RNG stream, so triple `#k` serves
//! image `#k` whether the images arrive one per round-trip or stacked into
//! one batched GEMM. Both the sequential and the batched side therefore
//! prepare fresh (so both consume triples `0..B` of every lane) and the
//! logits must agree to the last bit.

use aq2pnn::dealer::{DealerConfig, DealerPool, ExhaustionPolicy, ExpandFn};
use aq2pnn::engine::{BatchInput, PartyInput};
use aq2pnn::prepared::PreparedModel;
use aq2pnn::sim::{run_pair, run_two_party_service, PartyObs};
use aq2pnn::{PartyContext, ProtocolConfig, ProtocolError};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::zoo;
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::dealer::TripleDealer;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::duplex;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained tiny CNN plus a pool of test images, built once for the
/// whole binary (training dominates these tests' cost).
fn model_and_images() -> &'static (QuantModel, Vec<Vec<f32>>) {
    static CELL: OnceLock<(QuantModel, Vec<Vec<f32>>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = SyntheticVision::tiny(4, 41);
        let mut net = FloatNet::init(&zoo::tiny_cnn(4), 42).expect("valid spec");
        net.train_epochs(&data, 2, 8, 0.05);
        let model = QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8())
            .expect("quantization succeeds");
        let images = data.test().iter().take(6).map(|s| s.image.clone()).collect();
        (model, images)
    })
}

/// `B` sequential `run` calls on one freshly prepared session: consumes
/// triples `0..B` of every lane, the same stream positions one batched
/// call uses.
fn sequential_logits(cfg: &ProtocolConfig, images: &[Vec<f32>]) -> Vec<Vec<i64>> {
    let model = model_and_images().0.clone();
    let images: Arc<Vec<Vec<f32>>> = Arc::new(images.to_vec());
    let (l0, l1) = run_pair(cfg, move |ctx| {
        let mut prepared = PreparedModel::prepare(ctx, &model).expect("prepare");
        images
            .iter()
            .map(|img| {
                let input = match ctx.id {
                    PartyId::User => PartyInput::User(img),
                    PartyId::ModelProvider => PartyInput::Provider,
                };
                prepared.run(ctx, input).expect("sequential run").logits
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(l0, l1, "sequential parties desynced");
    l0
}

/// One `run_batch` over all of `images` on a freshly prepared session.
fn batched_logits(cfg: &ProtocolConfig, images: &[Vec<f32>]) -> Vec<Vec<i64>> {
    let model = model_and_images().0.clone();
    let images: Arc<Vec<Vec<f32>>> = Arc::new(images.to_vec());
    let b = images.len();
    let (l0, l1) = run_pair(cfg, move |ctx| {
        let mut prepared = PreparedModel::prepare(ctx, &model).expect("prepare");
        let refs: Vec<&[f32]> = images.iter().map(Vec::as_slice).collect();
        let input = match ctx.id {
            PartyId::User => BatchInput::User(&refs),
            PartyId::ModelProvider => BatchInput::Provider { batch: b },
        };
        prepared.run_batch(ctx, input).expect("batched run").logits
    });
    assert_eq!(l0, l1, "batched parties desynced");
    l0
}

/// The acceptance sweep: `run_batch(B)` logits equal `B` sequential runs
/// bit for bit, at several batch sizes and in both the paper config
/// (RevealedSign + local truncation) and the exact-conversion config.
#[test]
fn run_batch_matches_sequential_runs() {
    let images = &model_and_images().1;
    for (name, cfg) in [("paper", ProtocolConfig::paper(16)), ("exact", ProtocolConfig::exact(16))]
    {
        for b in [1usize, 2, 3, 5] {
            let seq = sequential_logits(&cfg, &images[..b]);
            let bat = batched_logits(&cfg, &images[..b]);
            assert_eq!(seq, bat, "cfg {name}, B = {b}: batched logits diverged from sequential");
        }
    }
}

/// Thread count changes *when* GEMM rows are computed, never *what* they
/// hold: the batched pass must produce the same bits at 1 and 4 workers.
/// (`AQ2PNN_THREADS` is re-read per fan-out, so toggling it mid-process is
/// supported; bit-identity across thread counts is a protocol invariant,
/// so concurrent tests in this binary are unaffected by the toggle.)
#[test]
fn run_batch_bit_identical_across_thread_counts() {
    let images = &model_and_images().1;
    let cfg = ProtocolConfig::paper(16);
    let baseline = sequential_logits(&cfg, &images[..4]);
    for threads in ["1", "4"] {
        std::env::set_var("AQ2PNN_THREADS", threads);
        let got = batched_logits(&cfg, &images[..4]);
        std::env::remove_var("AQ2PNN_THREADS");
        assert_eq!(got, baseline, "B = 4 batched logits changed at {threads} thread(s)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Chunked service runs agree with the per-image baseline for random
    /// chunk sizes: splitting 5 images into chunks of `b` consumes the
    /// same per-lane stream prefix, so the concatenated logits match.
    #[test]
    fn chunked_batches_match_sequential(b in 1usize..=5) {
        let images = &model_and_images().1;
        let cfg = ProtocolConfig::paper(16);
        let seq = sequential_logits(&cfg, &images[..5]);
        let model = model_and_images().0.clone();
        let refs: Vec<&[f32]> = images[..5].iter().map(Vec::as_slice).collect();
        let (e0, e1) = duplex();
        let run = run_two_party_service(
            e0, e1, &model, &cfg, &refs, b, None,
            PartyObs::default(), PartyObs::default(),
        ).expect("service run");
        prop_assert_eq!(&run.logits, &seq, "chunk size {} diverged", b);
    }
}

/// A background dealer pool is transcript-invisible: pooled triples are
/// the same stream elements inline generation would draw, so a dealer-fed
/// service run recovers exactly the inline run's logits.
#[test]
fn background_dealer_matches_inline_generation() {
    let (model, images) = model_and_images();
    let cfg = ProtocolConfig::paper(16);
    let refs: Vec<&[f32]> = images[..4].iter().map(Vec::as_slice).collect();

    let (e0, e1) = duplex();
    let inline = run_two_party_service(
        e0,
        e1,
        model,
        &cfg,
        &refs,
        2,
        None,
        PartyObs::default(),
        PartyObs::default(),
    )
    .expect("inline run");

    let (e0, e1) = duplex();
    let dealt = run_two_party_service(
        e0,
        e1,
        model,
        &cfg,
        &refs,
        2,
        Some(DealerConfig { depth: 8, policy: ExhaustionPolicy::GenerateInline }),
        PartyObs::default(),
        PartyObs::default(),
    )
    .expect("dealer-backed run");

    assert_eq!(inline.logits, dealt.logits, "background dealer changed the recovered logits");
}

/// A strict pool (`ExhaustionPolicy::Fail`) that runs dry must surface
/// the typed [`ProtocolError::DealerExhausted`] naming the starved layer
/// — not panic, not silently generate — and serve again once the refill
/// loop resumes and rewarms the queue.
#[test]
fn dealer_exhaustion_surfaces_typed_error() {
    const DEPTH: usize = 3;
    let cfg = ProtocolConfig::paper(16);
    let (e0, _e1) = duplex();
    let ctx = PartyContext::new(PartyId::User, e0, cfg, None);

    let mut dealer = TripleDealer::from_seed(0xd00d);
    let (lane, _peer) = dealer.expanded_lane(Ring::new(16), &[1, 4], &[4, 3]);
    let expand: ExpandFn = Box::new(RingTensor::clone);
    let pool = DealerPool::new(
        &ctx,
        vec![("fc0".to_string(), lane, expand)],
        DealerConfig { depth: DEPTH, policy: ExhaustionPolicy::Fail },
    );
    assert!(pool.wait_warm(Duration::from_secs(10)), "pool never warmed");
    pool.pause();

    let slot = &pool.slots()[0];
    for i in 0..DEPTH {
        slot.take().unwrap_or_else(|e| panic!("warm take {i} failed: {e}"));
    }
    let err = slot.take().expect_err("a drained strict pool must refuse the take");
    match err {
        ProtocolError::DealerExhausted { ref layer } => {
            assert_eq!(layer, "fc0", "exhaustion error names the wrong layer");
            assert!(err.to_string().contains("fc0"), "exhaustion message omits the layer: {err}");
        }
        other => panic!("expected DealerExhausted, got: {other}"),
    }

    // Recovery: resuming the refill loop rewarms the queue and takes
    // succeed again with the next elements of the lane's stream.
    pool.resume();
    assert!(pool.wait_warm(Duration::from_secs(10)), "pool never rewarmed after resume");
    slot.take().expect("rewarmed take succeeds");
}
