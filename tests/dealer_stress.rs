//! Multi-producer/multi-consumer stress for [`DealerPool`]: the always-on
//! companion to the `cfg(loom)` models (which explore small schedules
//! exhaustively; this hammers big ones probabilistically and runs in every
//! plain `cargo test`, including the ThreadSanitizer CI job).
//!
//! Several consumer threads drain one slot while the background dealer
//! refills under backpressure (queue depth ≪ total takes). The invariants
//! under test are exactly the dealer's documented contract:
//!
//! * **stream order**: the k-th take (globally, and hence per consumer in
//!   subsequence) is the k-th element of the lane's RNG stream — no
//!   reorder, duplication, or loss across the queue/inline-fallback race;
//! * **no lost wakeups**: after the storm the refill loop must rewarm the
//!   queue to full depth within a generous deadline.

use aq2pnn::dealer::{DealerConfig, DealerPool, ExhaustionPolicy, ExpandFn};
use aq2pnn::{PartyContext, ProtocolConfig};
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::TripleShare;
use aq2pnn_sharing::dealer::TripleDealer;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::duplex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const CONSUMERS: usize = 4;
const TAKES_PER_CONSUMER: usize = 24;
const TOTAL: usize = CONSUMERS * TAKES_PER_CONSUMER;
const DEPTH: usize = 4; // ≪ TOTAL: the refill loop parks and re-wakes constantly

/// Drives one full storm at the current `AQ2PNN_THREADS` setting.
fn storm(seed: u64) {
    let cfg = ProtocolConfig::paper(16);
    let (e0, _e1) = duplex();
    let ctx = PartyContext::new(PartyId::User, e0, cfg, None);

    let mut dealer = TripleDealer::from_seed(seed);
    let (lane, _peer) = dealer.expanded_lane(Ring::new(16), &[1, 4], &[4, 3]);

    // The lane's RNG stream *is* the ground truth: a clone of the lane
    // replays exactly the material the pool will hand out.
    let mut reference = lane.clone();
    let expected: Vec<TripleShare> =
        (0..TOTAL).map(|_| reference.next(RingTensor::clone)).collect();
    let index_of = |t: &TripleShare| expected.iter().position(|e| e == t);

    let expand: ExpandFn = Box::new(RingTensor::clone);
    let pool = DealerPool::new(
        &ctx,
        vec![("fc0".to_string(), lane, expand)],
        DealerConfig { depth: DEPTH, policy: ExhaustionPolicy::GenerateInline },
    );
    assert!(pool.wait_warm(Duration::from_secs(10)), "pool never warmed before the storm");

    let slot = &pool.slots()[0];
    let remaining = AtomicUsize::new(TOTAL);
    let per_consumer: Vec<Vec<TripleShare>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let remaining = &remaining;
                scope.spawn(move || {
                    let mut got = Vec::with_capacity(TAKES_PER_CONSUMER);
                    while remaining
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_ok()
                    {
                        got.push(slot.take().expect("GenerateInline take never fails"));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("consumer panicked")).collect()
    });

    // Every consumer's takes sit at strictly increasing stream positions,
    // and the union covers 0..TOTAL exactly once: nothing lost, nothing
    // duplicated, nothing reordered past another take.
    let mut seen = [false; TOTAL];
    for (c, takes) in per_consumer.iter().enumerate() {
        let mut last: Option<usize> = None;
        for t in takes {
            let idx = index_of(t).unwrap_or_else(|| {
                panic!("consumer {c} received a triple outside the lane's stream")
            });
            assert!(last.is_none_or(|l| idx > l), "consumer {c} saw stream order regress");
            assert!(!seen[idx], "stream position {idx} served twice");
            seen[idx] = true;
            last = Some(idx);
        }
    }
    assert!(seen.iter().all(|&s| s), "some stream positions were never served");

    // Lost-wakeup check: consumption notified the refill loop throughout;
    // after the storm it must top the queue back up unprompted.
    assert!(
        pool.wait_warm(Duration::from_secs(10)),
        "refill loop failed to rewarm after the storm (lost wakeup)"
    );
}

/// The storm at both ends of the fan-out range: single-threaded kernels
/// (`AQ2PNN_THREADS=1`, the in-process GEMM runs inline) and multi
/// (`AQ2PNN_THREADS=4`). Sequential within one test so the env toggle
/// cannot race a concurrent storm.
#[test]
fn mpmc_storm_preserves_stream_order_and_wakeups() {
    for (i, threads) in ["1", "4"].into_iter().enumerate() {
        std::env::set_var("AQ2PNN_THREADS", threads);
        storm(0xdea1e5 + i as u64);
        std::env::remove_var("AQ2PNN_THREADS");
    }
}
