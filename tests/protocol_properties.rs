//! Property-based tests on the protocol building blocks: randomized
//! inputs through real two-party executions.

use aq2pnn::abrelu::abrelu;
use aq2pnn::gemm::secure_matmul;
use aq2pnn::sim::run_pair;
use aq2pnn::ProtocolConfig;
use aq2pnn_ring::{Ring, RingTensor};
use aq2pnn_sharing::beaver::ring_matmul;
use aq2pnn_sharing::{AShare, PartyId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn share(ring: Ring, shape: Vec<usize>, vals: &[i64], seed: u64) -> (AShare, AShare) {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = RingTensor::from_signed(ring, shape, vals).expect("valid shape");
    AShare::share(&t, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AS-GEMM ≡ plaintext ring matmul for arbitrary shapes and values.
    #[test]
    fn secure_matmul_equals_plaintext(
        m in 1usize..5,
        k in 1usize..5,
        n in 1usize..5,
        seed in 0u64..1000,
        bits in 8u32..24,
    ) {
        let cfg = ProtocolConfig::paper(bits.clamp(8, 24));
        let ring = cfg.q1();
        let mut rng = StdRng::seed_from_u64(seed);
        let a_vals: Vec<i64> =
            (0..m * k).map(|_| rng.gen_range(ring.min_signed()..=ring.max_signed())).collect();
        let b_vals: Vec<i64> =
            (0..k * n).map(|_| rng.gen_range(ring.min_signed()..=ring.max_signed())).collect();
        let (a0, a1) = share(ring, vec![m, k], &a_vals, seed + 1);
        let (b0, b1) = share(ring, vec![k, n], &b_vals, seed + 2);
        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let (x, w) = match ctx.id {
                PartyId::User => (a0.clone(), b0.clone()),
                PartyId::ModelProvider => (a1.clone(), b1.clone()),
            };
            secure_matmul(ctx, &x, &w).expect("gemm runs")
        });
        let rec = AShare::recover(&o0, &o1).expect("shapes agree");
        let pa = RingTensor::from_signed(ring, vec![m, k], &a_vals).expect("shape");
        let pb = RingTensor::from_signed(ring, vec![k, n], &b_vals).expect("shape");
        prop_assert_eq!(rec, ring_matmul(&pa, &pb).expect("shape"));
    }

    /// ABReLU ≡ plaintext ReLU for every representable value, at random
    /// ring widths.
    #[test]
    fn abrelu_equals_relu(
        seed in 0u64..1000,
        bits in 8u32..20,
        len in 1usize..40,
    ) {
        let cfg = ProtocolConfig::paper(bits);
        let ring = cfg.q1();
        let mut rng = StdRng::seed_from_u64(seed);
        let vals: Vec<i64> =
            (0..len).map(|_| rng.gen_range(ring.min_signed()..=ring.max_signed())).collect();
        let (s0, s1) = share(ring, vec![len], &vals, seed + 7);
        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let mine = match ctx.id {
                PartyId::User => s0.clone(),
                PartyId::ModelProvider => s1.clone(),
            };
            abrelu(ctx, &mine).expect("abrelu runs")
        });
        let rec = AShare::recover(&o0, &o1).expect("shapes agree");
        let expect: Vec<i64> = vals.iter().map(|&v| v.max(0)).collect();
        prop_assert_eq!(rec.to_signed(), expect);
    }

    /// The secure comparison never leaks through incorrect results at the
    /// boundary values of the ring.
    #[test]
    fn abrelu_ring_boundaries(bits in 8u32..16) {
        let cfg = ProtocolConfig::paper(bits);
        let ring = cfg.q1();
        let vals = vec![
            0i64,
            1,
            -1,
            ring.max_signed(),
            ring.min_signed(),
            ring.max_signed() - 1,
            ring.min_signed() + 1,
        ];
        let (s0, s1) = share(ring, vec![vals.len()], &vals, u64::from(bits));
        let expect: Vec<i64> = vals.iter().map(|&v| v.max(0)).collect();
        let (o0, o1) = run_pair(&cfg, move |ctx| {
            let mine = match ctx.id {
                PartyId::User => s0.clone(),
                PartyId::ModelProvider => s1.clone(),
            };
            abrelu(ctx, &mine).expect("abrelu runs")
        });
        let rec = AShare::recover(&o0, &o1).expect("shapes agree");
        prop_assert_eq!(rec.to_signed(), expect);
    }
}
