//! Additional end-to-end engine coverage: larger architectures, combined
//! protocol-mode matrices, pipeline ablation, and failure handling.

use aq2pnn::sim::run_two_party;
use aq2pnn::{PipelineMode, ProtocolConfig, ReluMode, ReluRounds};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_nn::zoo;

/// Full LeNet5 (28×28 input, two conv stages, three FC layers) runs
/// privately end to end and matches the plaintext decision.
#[test]
fn lenet5_secure_inference_end_to_end() {
    let data = SyntheticVision::mnist_like(77);
    let mut net = FloatNet::init(&zoo::lenet5(), 78).expect("valid spec");
    net.train_epochs(&data, 1, 16, 0.05);
    let model =
        QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8()).expect("quantizes");
    let cfg = ProtocolConfig::exact(16);
    for s in data.test().iter().take(2) {
        let run = run_two_party(&model, &cfg, &s.image, 0).expect("2pc runs");
        let reference =
            model.forward_ring_exact(&s.image, cfg.q1_bits, cfg.q2_bits).expect("reference");
        assert_eq!(run.logits, reference);
    }
}

/// Every (ReluMode × ReluRounds) combination computes the same function in
/// exact mode — a 2×2 protocol matrix over the residual model.
#[test]
fn protocol_mode_matrix_is_function_preserving() {
    let data = SyntheticVision::tiny(4, 88);
    let mut net = FloatNet::init(&zoo::tiny_resnet(4), 89).expect("valid spec");
    net.train_epochs(&data, 1, 8, 0.05);
    let model =
        QuantModel::quantize(&net, &data.calibration(8), &QuantConfig::int8()).expect("quantizes");
    let image = &data.test()[0].image;
    let reference = model.forward_ring_exact(image, 16, 32).expect("reference");
    for mode in [ReluMode::RevealedSign, ReluMode::MaskedMux] {
        for rounds in [ReluRounds::Single, ReluRounds::Lazy] {
            let mut cfg = ProtocolConfig::exact(16);
            cfg.relu_mode = mode;
            cfg.relu_rounds = rounds;
            let run = run_two_party(&model, &cfg, image, 0).expect("2pc runs");
            assert_eq!(run.logits, reference, "mode {mode:?} rounds {rounds:?}");
        }
    }
}

/// The narrow-activation (literal Fig. 8) pipeline runs — and is visibly
/// less accurate than stay-wide at the same headroom, which is the whole
/// point of the ablation.
#[test]
fn narrow_pipeline_degrades_vs_stay_wide() {
    let data = SyntheticVision::tiny(4, 99);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), 100).expect("valid spec");
    net.train_epochs(&data, 3, 8, 0.05);
    let model =
        QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8()).expect("quantizes");
    let n = 10;
    let count_agree = |cfg: &ProtocolConfig| {
        data.test()
            .iter()
            .take(n)
            .filter(|s| {
                let run = run_two_party(&model, cfg, &s.image, 0).expect("runs");
                let plain = model.forward(&s.image).expect("plaintext");
                argmax_i64(&run.logits) == argmax_i64(&plain)
            })
            .count()
    };
    let wide = count_agree(&ProtocolConfig::paper(12));
    let mut narrow_cfg = ProtocolConfig::paper(12);
    narrow_cfg.pipeline = PipelineMode::NarrowActivations;
    let narrow = count_agree(&narrow_cfg);
    assert!(wide >= n - 1, "stay-wide agreement {wide}/{n}");
    assert!(narrow < wide, "narrow {narrow} should underperform wide {wide}");
}

/// The carrier cliff measured through the *real* engine (not the fast
/// simulation): at a carrier too small for INT8 values the secure
/// classification collapses.
#[test]
fn real_engine_exhibits_the_carrier_cliff() {
    let data = SyntheticVision::tiny(4, 111);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), 112).expect("valid spec");
    net.train_epochs(&data, 3, 8, 0.05);
    let model =
        QuantModel::quantize(&net, &data.calibration(16), &QuantConfig::int8()).expect("quantizes");
    let n = 8;
    let accuracy_at = |bits: u32| {
        let cfg = ProtocolConfig::exact(bits);
        data.test()
            .iter()
            .take(n)
            .filter(|s| {
                let run = run_two_party(&model, &cfg, &s.image, 0).expect("runs");
                argmax_i64(&run.logits) == s.label
            })
            .count()
    };
    let healthy = accuracy_at(12);
    let cliff = accuracy_at(7);
    assert!(healthy >= n - 2, "12-bit carrier should classify: {healthy}/{n}");
    assert!(cliff <= healthy - 2, "7-bit carrier should collapse: {cliff} vs {healthy}");
}

/// Protocol misuse is detected: mismatched party inputs error instead of
/// hanging or corrupting.
#[test]
fn mismatched_party_input_is_rejected() {
    use aq2pnn::engine::{run_party, PartyInput};
    use aq2pnn::PartyContext;
    use aq2pnn_sharing::PartyId;
    use aq2pnn_transport::duplex;

    let data = SyntheticVision::tiny(4, 5);
    let net = FloatNet::init(&zoo::tiny_cnn(4), 6).expect("valid spec");
    let model =
        QuantModel::quantize(&net, &data.calibration(4), &QuantConfig::int8()).expect("quantizes");
    let (e0, _e1) = duplex();
    let mut ctx = PartyContext::new(PartyId::User, e0, ProtocolConfig::paper(16), None);
    // User claiming to be the provider.
    let err = run_party(&mut ctx, &model, PartyInput::Provider).unwrap_err();
    assert!(matches!(err, aq2pnn::ProtocolError::Model(_)));
}

/// Deterministic replays: two identical runs produce identical logits and
/// identical byte counts (the whole stack is seed-stable).
#[test]
fn runs_are_deterministic() {
    let data = SyntheticVision::tiny(4, 121);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), 122).expect("valid spec");
    net.train_epochs(&data, 1, 8, 0.05);
    let model =
        QuantModel::quantize(&net, &data.calibration(8), &QuantConfig::int8()).expect("quantizes");
    let cfg = ProtocolConfig::paper(16);
    let a = run_two_party(&model, &cfg, &data.test()[0].image, 0).expect("runs");
    let b = run_two_party(&model, &cfg, &data.test()[0].image, 0).expect("runs");
    assert_eq!(a.logits, b.logits);
    assert_eq!(a.user_stats.bytes_sent, b.user_stats.bytes_sent);
    assert_eq!(a.provider_stats.bytes_sent, b.provider_stats.bytes_sent);
}

/// AlexNet (stride-4 stem, 3×3/s2 pools, three FC stages) — the remaining
/// zoo geometry — runs exactly through the engine.
#[test]
fn alexnet_geometry_runs_exactly() {
    // Train-free: random init is fine for a bit-exactness check.
    let data = SyntheticVision::generate(4, 1, 28, 28, 32, 8, 0.3, 131);
    let net = FloatNet::init(&zoo::alexnet_mnist(), 132).expect("valid spec");
    let model =
        QuantModel::quantize(&net, &data.calibration(8), &QuantConfig::int8()).expect("quantizes");
    let cfg = ProtocolConfig::exact(16);
    let image = &data.test()[0].image;
    let run = run_two_party(&model, &cfg, image, 0).expect("2pc runs");
    let reference = model.forward_ring_exact(image, cfg.q1_bits, cfg.q2_bits).expect("ref");
    assert_eq!(run.logits, reference);
}
