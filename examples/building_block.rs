//! Reproduction of paper Fig. 8: one quantized DNN building block
//! (Conv2D → BNReQ → ABReLU) executed step by step in the ciphertext
//! domain, with the ring-size changes made visible.
//!
//! Steps (numbers match the figure): ① 8-bit quantized model from the
//! provider; ② data expanded onto the `Q1` carrier; ③ additive shares
//! deployed; ④ ring-size extension `Q1 → Q2`; ⑤ mask exchange;
//! ⑥ 2PC-Conv2D via AS-GEMM; ⑦ 2PC-BNReQ (scale + truncate);
//! ⑧ correctness check against plaintext; ⑨ ABReLU; ⑩ block outputs.
//!
//! ```sh
//! cargo run --release --example building_block
//! ```

use aq2pnn::abrelu::abrelu;
use aq2pnn::ops::{requant_share, secure_conv2d, ConvGeometry};
use aq2pnn::sim::run_pair;
use aq2pnn::ProtocolConfig;
use aq2pnn_nn::quant::Requant;
use aq2pnn_ring::RingTensor;
use aq2pnn_sharing::{AShare, PartyId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 8 uses Q1 = 2^12, Q2 = 2^16 for an 8-bit quantized model.
    let mut cfg = ProtocolConfig::exact(12);
    cfg.q2_bits = 16;
    let (q1, q2) = (cfg.q1(), cfg.q2());
    println!("① 8-bit quantized weights/inputs from the plaintext domain");
    println!("② carrier ring Q1 = {q1}, MAC ring Q2 = {q2}\n");

    // A 2x4x4 input, one 3x3 conv to 2 channels.
    let g =
        ConvGeometry { in_c: 2, out_c: 2, k: 3, stride: 1, pad: 1, in_hw: (4, 4), out_hw: (4, 4) };
    let x_vals: Vec<i64> = (0..32).map(|i| (i % 13) - 6).collect();
    let w_vals: Vec<i64> = (0..36).map(|i| i64::from((i * 7) % 9) - 4).collect();
    let requant = Requant { mult: 77, shift: 8 }; // I_m = 77, I_e = 8 (≈ 0.30)

    let input = RingTensor::from_signed(q1, vec![2, 4, 4], &x_vals)?;
    // Weight matrix in [k·k·in_c, out_c] layout for AS-GEMM.
    let mut wm = vec![0u64; 18 * 2];
    for oc in 0..2 {
        for kk in 0..18 {
            wm[kk * 2 + oc] = q2.encode_signed_wrapping(w_vals[oc * 18 + kk]);
        }
    }
    let weight = RingTensor::from_raw(q2, vec![18, 2], wm)?;
    let bias = RingTensor::from_signed(q2, vec![2], &[10, -10])?;

    println!("③ deploying additive secret shares of input and weights");
    let mut rng = StdRng::seed_from_u64(3);
    let (x0, x1) = AShare::share(&input, &mut rng);
    let (w0, w1) = AShare::share(&weight, &mut rng);
    let (b0, b1) = AShare::share(&bias, &mut rng);
    println!("   party 0 input share[0..4]: {:?}", &x0.as_tensor().as_slice()[..4]);
    println!("   party 1 input share[0..4]: {:?}", &x1.as_tensor().as_slice()[..4]);

    let (r0, r1) = run_pair(&cfg, move |ctx| {
        let (xs, ws, bs) = match ctx.id {
            PartyId::User => (x0.clone(), w0.clone(), b0.clone()),
            PartyId::ModelProvider => (x1.clone(), w1.clone(), b1.clone()),
        };
        // ④ ring-size extension Q1 → Q2 (sign extension of shares).
        let x2 = ctx.extend_share(&xs, ctx.q2()).expect("extension");
        // ⑤/⑥ mask exchange + 2PC-Conv2D over AS-GEMM.
        let acc = secure_conv2d(ctx, &x2, &g, &ws, &bs).expect("conv");
        // ⑦ 2PC-BNReQ: ×I_m then truncate I_e, back onto Q1.
        let out = requant_share(ctx, &acc, requant, ctx.q1()).expect("bnreq");
        // ⑨ ABReLU.
        let relu = abrelu(ctx, &out).expect("abrelu");
        (acc, out, relu, ctx.ep.stats())
    });

    // ⑧ correctness check: recover and compare with plaintext.
    let acc = AShare::recover(&r0.0, &r1.0)?;
    let pre = AShare::recover(&r0.1, &r1.1)?;
    let post = AShare::recover(&r0.2, &r1.2)?;
    println!("\n⑥ conv accumulator (recovered, on {q2}): {:?}…", &acc.to_signed()[..4]);
    println!("⑦ after BNReQ (back on {q1}):            {:?}…", &pre.to_signed()[..4]);
    println!("⑨ after ABReLU:                          {:?}…", &post.to_signed()[..4]);

    // Plaintext reference.
    let mut expect = Vec::new();
    for oc in 0..2usize {
        for oy in 0..4i64 {
            for ox in 0..4i64 {
                let mut a = [10i64, -10][oc];
                for ic in 0..2usize {
                    for ky in 0..3i64 {
                        for kx in 0..3i64 {
                            let (iy, ix) = (oy + ky - 1, ox + kx - 1);
                            if (0..4).contains(&iy) && (0..4).contains(&ix) {
                                a += w_vals[(oc * 2 + ic) * 9 + (ky * 3 + kx) as usize]
                                    * x_vals[(ic * 4 + iy as usize) * 4 + ix as usize];
                            }
                        }
                    }
                }
                expect.push(requant.apply(a).max(0));
            }
        }
    }
    assert_eq!(post.to_signed(), expect, "block output must match plaintext");
    println!("\n⑧ ✓ recovered block output matches the plaintext reference");
    println!("⑩ block used {} B of communication (party 0)", r0.3.total_bytes());
    Ok(())
}
