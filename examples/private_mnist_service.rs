//! A privacy-preserving digit-classification service: the MLaaS scenario
//! of the paper's introduction, at LeNet5/MNIST scale.
//!
//! The *provider* trains LeNet5 on (synthetic) MNIST-like data and keeps
//! its weights private; the *user* submits private images. Neither side
//! reveals its secret; both learn only the logits. The example runs a
//! batch of secure inferences, reports accuracy parity with plaintext
//! inference, and estimates wall-clock link time on the paper's 1000 Mbps
//! LAN.
//!
//! ```sh
//! # Single process, in-memory link:
//! cargo run --release --example private_mnist_service
//!
//! # Two real processes over TCP (run in two terminals):
//! cargo run --release --example private_mnist_service -- --listen 127.0.0.1:9940
//! cargo run --release --example private_mnist_service -- --connect 127.0.0.1:9940
//! ```
//!
//! In two-process mode the connection runs through the fault-tolerant
//! session layer: frames are sequence-numbered and checksummed, and the
//! inference survives transient disconnects via reconnect + replay.

use aq2pnn::engine::{run_party, PartyInput};
use aq2pnn::sim::run_two_party;
use aq2pnn::{PartyContext, ProtocolConfig};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_nn::zoo;
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{Endpoint, NetworkModel, Session, SessionConfig, TcpConfig, TcpTransport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds the same deterministic dataset + trained/quantized model in any
/// process: both sides of the two-process mode derive identical weights
/// from the fixed seeds, standing in for the provider shipping its public
/// architecture + the offline share setup of a real deployment.
fn build_model() -> Result<(SyntheticVision, QuantModel), Box<dyn std::error::Error>> {
    let data = SyntheticVision::mnist_like(2024);
    let mut net = FloatNet::init(&zoo::lenet5(), 9)?;
    net.train_epochs(&data, 3, 16, 0.05);
    let model = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())?;
    Ok((data, model))
}

fn usage() -> ! {
    eprintln!(
        "usage: private_mnist_service [--listen ADDR | --connect ADDR] [--count N]\n\
         \n\
         no flags        run both parties in-process\n\
         --listen ADDR   run as the model provider, accept one user on ADDR\n\
         --connect ADDR  run as the user, connect to a provider on ADDR\n\
         --count N       number of test images to classify (default 10)"
    );
    std::process::exit(2)
}

struct Args {
    listen: Option<String>,
    connect: Option<String>,
    count: usize,
}

fn parse_args() -> Args {
    let mut args = Args { listen: None, connect: None, count: 10 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => args.listen = Some(it.next().unwrap_or_else(|| usage())),
            "--connect" => args.connect = Some(it.next().unwrap_or_else(|| usage())),
            "--count" => {
                args.count = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if args.listen.is_some() && args.connect.is_some() {
        usage();
    }
    args
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();

    println!("training LeNet5 on synthetic MNIST (deterministic seeds)…");
    let (data, model) = build_model()?;
    println!("plaintext int8 accuracy {:.1}%", 100.0 * model.accuracy(&data.test()[..50]));

    match (&args.listen, &args.connect) {
        (Some(addr), None) => serve_tcp(addr, PartyId::ModelProvider, &data, &model, args.count),
        (None, Some(addr)) => serve_tcp(addr, PartyId::User, &data, &model, args.count),
        _ => run_in_process(&data, &model, args.count),
    }
}

/// Single-process demo: both parties on threads over the in-memory link.
fn run_in_process(
    data: &SyntheticVision,
    model: &QuantModel,
    n: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ProtocolConfig::paper(16);
    let net_model = NetworkModel::paper_lan();
    let mut secure_correct = 0;
    let mut plain_agree = 0;
    let mut total_bytes = 0u64;
    let mut total_msgs = 0u64;
    for s in data.test().iter().take(n) {
        let run = run_two_party(model, &cfg, &s.image, 0)?;
        let pred = argmax_i64(&run.logits);
        if pred == s.label {
            secure_correct += 1;
        }
        let plain = model.forward(&s.image)?;
        if pred == argmax_i64(&plain) {
            plain_agree += 1;
        }
        total_bytes += run.user_stats.total_bytes();
        total_msgs += run.user_stats.messages_sent + run.user_stats.messages_received;
    }

    let per_inf_bytes = total_bytes / n as u64;
    let per_inf_msgs = total_msgs / n as u64;
    let link_secs = net_model.transfer_seconds(per_inf_bytes, per_inf_msgs);
    println!("\nsecure service over {n} private queries (Q1 = 2^{}):", cfg.q1_bits);
    println!("  secure accuracy        : {secure_correct}/{n}");
    println!("  agreement w/ plaintext : {plain_agree}/{n}");
    println!(
        "  communication          : {:.3} MiB per inference ({per_inf_msgs} msgs)",
        per_inf_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("  est. link time @1 Gbps : {:.1} ms per inference", 1e3 * link_secs);
    Ok(())
}

/// One real party over TCP: listener = model provider, connector = user.
fn serve_tcp(
    addr: &str,
    id: PartyId,
    data: &SyntheticVision,
    model: &QuantModel,
    n: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let tcp = match id {
        PartyId::ModelProvider => {
            println!("provider: listening on {addr}…");
            TcpTransport::listen(addr)?
        }
        PartyId::User => {
            println!("user: connecting to {addr}…");
            // Generous dial timeout so the user may be started first.
            let cfg =
                TcpConfig { connect_timeout: Duration::from_secs(30), ..TcpConfig::default() };
            TcpTransport::connect(addr, cfg)?
        }
    };
    let tcp = Arc::new(tcp);
    let session = Session::new(Arc::clone(&tcp) as Arc<_>, SessionConfig::default());
    // A 60 s receive deadline turns a dead peer into a typed Timeout
    // instead of a hang.
    let ep = Endpoint::over_transport(Arc::new(session), Some(Duration::from_secs(60)));
    let cfg = ProtocolConfig::paper(16);
    let mut ctx = PartyContext::new(id, ep, cfg, None);

    let started = Instant::now();
    let mut secure_correct = 0;
    let mut total_bytes = 0u64;
    for (i, s) in data.test().iter().take(n).enumerate() {
        let input = match id {
            PartyId::User => PartyInput::User(&s.image),
            PartyId::ModelProvider => PartyInput::Provider,
        };
        let out = run_party(&mut ctx, model, input)?;
        let pred = argmax_i64(&out.logits);
        if pred == s.label {
            secure_correct += 1;
        }
        total_bytes += out.stats.total_bytes();
        println!("  inference {i}: predicted {pred} (label {})", s.label);
    }
    let (wire_tx, wire_rx) = tcp.wire_bytes();
    let elapsed = started.elapsed();
    println!("\n{n} secure inferences over TCP ({})", ctx.ep.link_descriptor());
    println!("  secure accuracy   : {secure_correct}/{n}");
    println!(
        "  payload traffic   : {:.3} MiB  (wire: {:.3} MiB out, {:.3} MiB in, incl. framing)",
        total_bytes as f64 / (1024.0 * 1024.0),
        wire_tx as f64 / (1024.0 * 1024.0),
        wire_rx as f64 / (1024.0 * 1024.0),
    );
    println!(
        "  wall-clock        : {:.2} s total, {:.2} s per inference",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / n as f64
    );
    Ok(())
}
