//! A privacy-preserving digit-classification service: the MLaaS scenario
//! of the paper's introduction, at LeNet5/MNIST scale.
//!
//! The *provider* trains LeNet5 on (synthetic) MNIST-like data and keeps
//! its weights private; the *user* submits private images. Neither side
//! reveals its secret; both learn only the logits. The example runs a
//! batch of secure inferences, reports accuracy parity with plaintext
//! inference, and estimates wall-clock link time on the paper's 1000 Mbps
//! LAN.
//!
//! ```sh
//! cargo run --release --example private_mnist_service
//! ```

use aq2pnn::sim::run_two_party;
use aq2pnn::ProtocolConfig;
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_nn::zoo;
use aq2pnn_transport::NetworkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Provider: train + quantize LeNet5 (plaintext, offline). ---
    println!("provider: training LeNet5 on synthetic MNIST…");
    let data = SyntheticVision::mnist_like(2024);
    let mut net = FloatNet::init(&zoo::lenet5(), 9)?;
    net.train_epochs(&data, 3, 16, 0.05);
    let model = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())?;
    println!(
        "provider: plaintext int8 accuracy {:.1}%",
        100.0 * model.accuracy(&data.test()[..50])
    );

    // --- Service: users submit private images. ---
    let cfg = ProtocolConfig::paper(16);
    let net_model = NetworkModel::paper_lan();
    let n = 10;
    let mut secure_correct = 0;
    let mut plain_agree = 0;
    let mut total_bytes = 0u64;
    let mut total_msgs = 0u64;
    for s in data.test().iter().take(n) {
        let run = run_two_party(&model, &cfg, &s.image, 0)?;
        let pred = argmax_i64(&run.logits);
        if pred == s.label {
            secure_correct += 1;
        }
        let plain = model.forward(&s.image)?;
        if pred == argmax_i64(&plain) {
            plain_agree += 1;
        }
        total_bytes += run.user_stats.total_bytes();
        total_msgs += run.user_stats.messages_sent + run.user_stats.messages_received;
    }

    let per_inf_bytes = total_bytes / n as u64;
    let per_inf_msgs = total_msgs / n as u64;
    let link_secs = net_model.transfer_seconds(per_inf_bytes, per_inf_msgs);
    println!("\nsecure service over {n} private queries (Q1 = 2^{}):", cfg.q1_bits);
    println!("  secure accuracy        : {secure_correct}/{n}");
    println!("  agreement w/ plaintext : {plain_agree}/{n}");
    println!(
        "  communication          : {:.3} MiB per inference ({per_inf_msgs} msgs)",
        per_inf_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("  est. link time @1 Gbps : {:.1} ms per inference", 1e3 * link_secs);
    Ok(())
}
