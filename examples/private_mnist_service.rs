//! A privacy-preserving digit-classification service: the MLaaS scenario
//! of the paper's introduction, at LeNet5/MNIST scale.
//!
//! The *provider* trains LeNet5 on (synthetic) MNIST-like data and keeps
//! its weights private; the *user* submits private images. Neither side
//! reveals its secret; both learn only the logits. The example runs a
//! batch of secure inferences, reports accuracy parity with plaintext
//! inference, and estimates wall-clock link time on the paper's 1000 Mbps
//! LAN.
//!
//! ```sh
//! # Single process, in-memory link:
//! cargo run --release --example private_mnist_service
//!
//! # With the tracing/metrics layer on: emits trace.json (Chrome
//! # trace_event, load in chrome://tracing or Perfetto), metrics.json and
//! # the per-layer cost report into OUT/:
//! cargo run --release --example private_mnist_service -- --trace OUT --metrics
//!
//! # Two real processes over TCP (run in two terminals):
//! cargo run --release --example private_mnist_service -- --listen 127.0.0.1:9940
//! cargo run --release --example private_mnist_service -- --connect 127.0.0.1:9940
//!
//! # Multi-client service (the aq2pnn-server crate): one provider,
//! # any number of concurrent users, bounded admission + graceful drain:
//! cargo run --release --example private_mnist_service -- --serve 127.0.0.1:9940
//! cargo run --release --example private_mnist_service -- --client 127.0.0.1:9940 &
//! cargo run --release --example private_mnist_service -- --client 127.0.0.1:9940
//! # SIGINT/SIGTERM on the server → drain; exit 0 clean, 3 force-closed
//! ```
//!
//! In two-process mode the connection runs through the fault-tolerant
//! session layer: frames are sequence-numbered and checksummed, and the
//! inference survives transient disconnects via reconnect + replay. The
//! multi-client mode multiplexes every user onto its own session stream
//! over one [`aq2pnn_server::InferenceServer`].
//!
//! Progress lines go through the tracer's human log sink (stderr with
//! monotonic timestamps); `--quiet` silences them. The summary and the
//! cost report print to stdout. All telemetry carries **public structure
//! only** — layer names, shapes, ring widths, byte counts (DESIGN.md §10).

use aq2pnn::dealer::{DealerConfig, ExhaustionPolicy};
use aq2pnn::engine::BatchInput;
use aq2pnn::prepared::PreparedModel;
use aq2pnn::sim::{run_two_party_service, run_two_party_traced, PartyObs};
use aq2pnn::substrate::obs::chrome::chrome_trace;
use aq2pnn::substrate::obs::json::Json;
use aq2pnn::substrate::obs::report::CostReport;
use aq2pnn::substrate::obs::{LogSink, MetricsRegistry, Tracer};
use aq2pnn::{PartyContext, ProtocolConfig};
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::quant::QuantModel;
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_server::{
    demo_model, run_client, signal, ClientConfig, InferenceServer, ModelRegistry, ServerConfig,
    ServerObs, TcpAcceptor,
};
use aq2pnn_sharing::PartyId;
use aq2pnn_transport::{
    duplex, Endpoint, NetworkModel, Session, SessionConfig, TcpConfig, TcpTransport,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds the same deterministic dataset + trained/quantized model in any
/// process — the shared [`aq2pnn_server::demo_model`] recipe, so the
/// single-session modes, the multi-client modes and `aq2pnn-serve` all
/// derive identical weights from the fixed seeds.
fn build_model(
    log: &Tracer,
    spec_name: &str,
) -> Result<(SyntheticVision, QuantModel), Box<dyn std::error::Error>> {
    log.info(format!("training {spec_name} on synthetic data (deterministic seeds)…"));
    demo_model(spec_name).map_err(Into::into)
}

fn usage() -> ! {
    eprintln!(
        "usage: private_mnist_service [--listen ADDR | --connect ADDR |\n\
         \x20                             --serve ADDR | --client ADDR] [--count N]\n\
         \x20                            [--batch B] [--dealer inline|background]\n\
         \x20                            [--model tiny|lenet5] [--trace DIR] [--metrics] [--quiet]\n\
         \n\
         no flags        run both parties in-process\n\
         --listen ADDR   run as the model provider, accept one user on ADDR\n\
         --connect ADDR  run as the user, connect to a provider on ADDR\n\
         --serve ADDR    run the multi-client provider (aq2pnn-server):\n\
         \x20               bounded admission, per-session deadlines, and a\n\
         \x20               SIGINT/SIGTERM graceful drain (exit 0 clean, 3 forced)\n\
         --client ADDR   run one user session against a --serve provider\n\
         --count N       number of test images to classify (default 10)\n\
         --batch B       images per batched online pass (default 1; both\n\
         \x20               parties of a TCP session must agree)\n\
         --dealer MODE   offline triple generation: inline (on the online\n\
         \x20               path, default) or background (pre-generated by\n\
         \x20               a dealer thread)\n\
         --model NAME    model to serve: tiny | lenet5 (default lenet5)\n\
         --trace DIR     write trace.json / metrics.json / report.txt into DIR\n\
         --metrics       print the metrics JSON to stdout\n\
         --quiet         suppress progress logging (summary still prints)"
    );
    std::process::exit(2)
}

struct Args {
    listen: Option<String>,
    connect: Option<String>,
    serve: Option<String>,
    client: Option<String>,
    count: usize,
    batch: usize,
    background_dealer: bool,
    model: String,
    trace: Option<PathBuf>,
    metrics: bool,
    quiet: bool,
}

impl Args {
    /// The dealer pool to spawn, if any: depth covers two full batches.
    fn dealer_config(&self) -> Option<DealerConfig> {
        self.background_dealer.then(|| DealerConfig {
            depth: (2 * self.batch).max(8),
            policy: ExhaustionPolicy::GenerateInline,
        })
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        connect: None,
        serve: None,
        client: None,
        count: 10,
        batch: 1,
        background_dealer: false,
        model: "lenet5".into(),
        trace: None,
        metrics: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => args.listen = Some(it.next().unwrap_or_else(|| usage())),
            "--connect" => args.connect = Some(it.next().unwrap_or_else(|| usage())),
            "--serve" => args.serve = Some(it.next().unwrap_or_else(|| usage())),
            "--client" => args.client = Some(it.next().unwrap_or_else(|| usage())),
            "--count" => {
                args.count = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--batch" => {
                args.batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&b| b >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--dealer" => match it.next().as_deref() {
                Some("inline") => args.background_dealer = false,
                Some("background") => args.background_dealer = true,
                _ => usage(),
            },
            "--model" => args.model = it.next().unwrap_or_else(|| usage()),
            "--trace" => args.trace = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--metrics" => args.metrics = true,
            "--quiet" => args.quiet = true,
            _ => usage(),
        }
    }
    let modes = [&args.listen, &args.connect, &args.serve, &args.client];
    if modes.iter().filter(|m| m.is_some()).count() > 1 {
        usage();
    }
    args
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();

    // Progress goes through the tracer's human log sink: timestamped on
    // stderr by default, silenced by --quiet. A disabled tracer still
    // logs — span recording and progress logging are independent switches.
    let log = Tracer::disabled();
    if args.quiet {
        log.set_log_sink(LogSink::Silent);
    }

    let (data, model) = build_model(&log, &args.model)?;
    log.info(format!(
        "plaintext int8 accuracy {:.1}%",
        100.0 * model.accuracy(&data.test()[..50.min(data.test().len())])
    ));

    if let Some(addr) = &args.serve {
        return serve_multi(addr, &model, &args, &log);
    }
    if let Some(addr) = &args.client {
        return client_session(addr, &data, &model, &args, &log);
    }
    match (&args.listen, &args.connect) {
        (Some(addr), None) => serve_tcp(addr, PartyId::ModelProvider, &data, &model, &args, &log),
        (None, Some(addr)) => serve_tcp(addr, PartyId::User, &data, &model, &args, &log),
        _ => run_in_process(&data, &model, &args, &log),
    }
}

/// Multi-client provider: one [`InferenceServer`] serving any number of
/// concurrent `--client` users until a SIGINT/SIGTERM drains it.
fn serve_multi(
    addr: &str,
    model: &QuantModel,
    args: &Args,
    log: &Tracer,
) -> Result<(), Box<dyn std::error::Error>> {
    signal::install_handlers();
    let mut registry = ModelRegistry::new();
    registry.insert(args.model.clone(), model.clone());
    let acceptor = TcpAcceptor::bind(addr, TcpConfig::default())?;
    let bound = acceptor.local_addr().map_or_else(|_| addr.to_owned(), |a| a.to_string());
    let cfg = ServerConfig { dealer: args.dealer_config(), ..ServerConfig::default() };
    let mut server =
        InferenceServer::start(Box::new(acceptor), cfg, registry, ServerObs::default());
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();
    log.info("multi-client server up; SIGINT/SIGTERM drains");

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(20));
    }
    log.info("signal received, draining…");
    let report = server.drain();
    let c = server.counters();
    println!(
        "drain clean={} forced={} ms={} admitted={} completed={} shed={} reaped={}",
        report.clean, report.forced, report.drain_ms, c.admitted, c.completed, c.shed, c.reaped
    );
    std::process::exit(i32::from(!report.clean) * 3);
}

/// One user session against a `--serve` provider: admission, request,
/// secure inference, accuracy summary.
fn client_session(
    addr: &str,
    data: &SyntheticVision,
    model: &QuantModel,
    args: &Args,
    log: &Tracer,
) -> Result<(), Box<dyn std::error::Error>> {
    let n = args.count.min(data.test().len());
    let images: Vec<&[f32]> = data.test().iter().take(n).map(|s| s.image.as_slice()).collect();
    log.info(format!("user: connecting to {addr}…"));
    let tcp = TcpConfig { connect_timeout: Duration::from_secs(30), ..TcpConfig::default() };
    let link = Arc::new(TcpTransport::connect(addr, tcp)?);
    let ccfg = ClientConfig {
        model: args.model.clone(),
        q1_bits: 16,
        batch: args.batch,
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let run = run_client(link, &ccfg, model, &images)?;
    let elapsed = started.elapsed();
    let mut secure_correct = 0;
    for (s, logits) in data.test().iter().take(n).zip(&run.logits) {
        if argmax_i64(logits) == s.label {
            secure_correct += 1;
        }
    }
    println!("\n{n} secure inferences as multiplexed client (stream {})", run.stream);
    println!("  secure accuracy   : {secure_correct}/{n}");
    println!("  payload traffic   : {:.3} MiB", run.payload_bytes as f64 / (1024.0 * 1024.0));
    println!(
        "  wall-clock        : {:.2} s total, {:.2} s per inference",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / n as f64
    );
    let t = &run.telemetry;
    println!(
        "  link repairs      : {} retransmits, {} naks, {} reconnects",
        t.retransmits, t.naks_sent, t.reconnects
    );
    Ok(())
}

/// Writes `trace.json`, `metrics.json` and `report.txt` into `dir`.
fn write_artifacts(
    dir: &Path,
    trace: &Json,
    metrics: &Json,
    report: &str,
    log: &Tracer,
) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("trace.json"), trace.to_string_pretty())?;
    std::fs::write(dir.join("metrics.json"), metrics.to_string_pretty())?;
    std::fs::write(dir.join("report.txt"), report)?;
    log.info(format!(
        "observability artifacts written to {} (trace.json / metrics.json / report.txt)",
        dir.display()
    ));
    Ok(())
}

/// Single-process demo: both parties on threads over the in-memory link.
fn run_in_process(
    data: &SyntheticVision,
    model: &QuantModel,
    args: &Args,
    log: &Tracer,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ProtocolConfig::paper(16);
    let net_model = NetworkModel::paper_lan();
    let n = args.count.min(data.test().len());
    let obs_on = args.trace.is_some() || args.metrics;
    let (user_obs, provider_obs) = if obs_on {
        (PartyObs::enabled(), PartyObs::enabled())
    } else {
        (PartyObs::default(), PartyObs::default())
    };
    if args.quiet {
        // The dealer/calibration progress lines go through the party
        // tracers' log sinks, not the example's own.
        user_obs.tracer.set_log_sink(LogSink::Silent);
        provider_obs.tracer.set_log_sink(LogSink::Silent);
    }

    let mut secure_correct = 0;
    let mut plain_agree = 0;
    let mut total_bytes = 0u64;
    let mut total_msgs = 0u64;
    if args.batch > 1 || args.background_dealer {
        // Batched service path: one session, prepare-once, B images per
        // online pass, optional background dealer on both parties.
        log.info(format!(
            "batched service: batch {}, dealer {}",
            args.batch,
            if args.background_dealer { "background" } else { "inline" }
        ));
        let images: Vec<&[f32]> = data.test().iter().take(n).map(|s| s.image.as_slice()).collect();
        let (e0, e1) = duplex();
        let run = run_two_party_service(
            e0,
            e1,
            model,
            &cfg,
            &images,
            args.batch,
            args.dealer_config(),
            user_obs.clone(),
            provider_obs.clone(),
        )?;
        for (i, (s, logits)) in data.test().iter().take(n).zip(&run.logits).enumerate() {
            let pred = argmax_i64(logits);
            if pred == s.label {
                secure_correct += 1;
            }
            let plain = model.forward(&s.image)?;
            if pred == argmax_i64(&plain) {
                plain_agree += 1;
            }
            log.info(format!("inference {i}: predicted {pred} (label {})", s.label));
        }
        total_bytes = run.user_stats.total_bytes();
        total_msgs = run.user_stats.messages_sent + run.user_stats.messages_received;
    } else {
        for (i, s) in data.test().iter().take(n).enumerate() {
            let (e0, e1) = duplex();
            let run = run_two_party_traced(
                e0,
                e1,
                model,
                &cfg,
                &s.image,
                user_obs.clone(),
                provider_obs.clone(),
            )?;
            let pred = argmax_i64(&run.logits);
            if pred == s.label {
                secure_correct += 1;
            }
            let plain = model.forward(&s.image)?;
            if pred == argmax_i64(&plain) {
                plain_agree += 1;
            }
            total_bytes += run.user_stats.total_bytes();
            total_msgs += run.user_stats.messages_sent + run.user_stats.messages_received;
            log.info(format!("inference {i}: predicted {pred} (label {})", s.label));
        }
    }

    let per_inf_bytes = total_bytes / n as u64;
    let per_inf_msgs = total_msgs / n as u64;
    let link_secs = net_model.transfer_seconds(per_inf_bytes, per_inf_msgs);
    println!("\nsecure service over {n} private queries (Q1 = 2^{}):", cfg.q1_bits);
    println!("  secure accuracy        : {secure_correct}/{n}");
    println!("  agreement w/ plaintext : {plain_agree}/{n}");
    println!(
        "  communication          : {:.3} MiB per inference ({per_inf_msgs} msgs)",
        per_inf_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("  est. link time @1 Gbps : {:.1} ms per inference", 1e3 * link_secs);

    if obs_on {
        let spans = [user_obs.tracer.snapshot(), provider_obs.tracer.snapshot()];
        let parties = [(0u32, &spans[0][..]), (1u32, &spans[1][..])];
        let report = CostReport::from_spans(&parties);
        let table = report.render();
        println!("\nper-layer cost report ({n} inference(s), both parties):\n{table}");
        let metrics = Json::obj(vec![
            ("party0", user_obs.metrics.snapshot().to_json()),
            ("party1", provider_obs.metrics.snapshot().to_json()),
        ]);
        if let Some(dir) = &args.trace {
            write_artifacts(dir, &chrome_trace(&parties), &metrics, &table, log)?;
        }
        if args.metrics {
            println!("{}", metrics.to_string_pretty());
        }
    }
    Ok(())
}

/// One real party over TCP: listener = model provider, connector = user.
fn serve_tcp(
    addr: &str,
    id: PartyId,
    data: &SyntheticVision,
    model: &QuantModel,
    args: &Args,
    log: &Tracer,
) -> Result<(), Box<dyn std::error::Error>> {
    let tcp = match id {
        PartyId::ModelProvider => {
            log.info(format!("provider: listening on {addr}…"));
            TcpTransport::listen(addr)?
        }
        PartyId::User => {
            log.info(format!("user: connecting to {addr}…"));
            // Generous dial timeout so the user may be started first.
            let cfg =
                TcpConfig { connect_timeout: Duration::from_secs(30), ..TcpConfig::default() };
            TcpTransport::connect(addr, cfg)?
        }
    };
    let tcp = Arc::new(tcp);
    let session = Arc::new(Session::new(Arc::clone(&tcp) as Arc<_>, SessionConfig::default()));
    // A 60 s receive deadline turns a dead peer into a typed Timeout
    // instead of a hang.
    let ep =
        Endpoint::over_transport(Arc::clone(&session) as Arc<_>, Some(Duration::from_secs(60)));
    let cfg = ProtocolConfig::paper(16);
    let mut ctx = PartyContext::new(id, ep, cfg, None);

    let obs_on = args.trace.is_some() || args.metrics;
    let (tracer, metrics) = if obs_on {
        (Tracer::new(), MetricsRegistry::new())
    } else {
        (Tracer::disabled(), MetricsRegistry::disabled())
    };
    if obs_on {
        session.attach_metrics(&metrics);
    }
    if args.quiet {
        tracer.set_log_sink(LogSink::Silent);
    }
    ctx.set_obs(tracer.clone(), metrics.clone());

    let started = Instant::now();
    let n = args.count.min(data.test().len());
    // Prepare once for the whole session: weight shares, GEMM layouts and
    // the offline-f openings are paid a single time, then every batch is
    // online-only. Both parties must agree on --count and --batch.
    let mut prepared = PreparedModel::prepare(&mut ctx, model)?;
    let _pool = args.dealer_config().map(|d| {
        let pool = prepared.spawn_dealer(&ctx, d);
        if pool.wait_warm(Duration::from_secs(10)) {
            log.info("background dealer warm");
        }
        pool
    });
    let mut secure_correct = 0;
    let mut done = 0usize;
    while done < n {
        let chunk = &data.test()[done..(done + args.batch).min(n)];
        let chunk_logits = match id {
            PartyId::User => {
                let images: Vec<&[f32]> = chunk.iter().map(|s| s.image.as_slice()).collect();
                let out = prepared.run_batch(&mut ctx, BatchInput::User(&images))?;
                out.logits
            }
            PartyId::ModelProvider => {
                let out =
                    prepared.run_batch(&mut ctx, BatchInput::Provider { batch: chunk.len() })?;
                out.logits
            }
        };
        for (s, logits) in chunk.iter().zip(&chunk_logits) {
            let pred = argmax_i64(logits);
            if pred == s.label {
                secure_correct += 1;
            }
            log.info(format!("inference {done}: predicted {pred} (label {})", s.label));
            done += 1;
        }
    }
    let total_bytes = ctx.ep.stats().total_bytes();
    let (wire_tx, wire_rx) = tcp.wire_bytes();
    let elapsed = started.elapsed();
    println!("\n{n} secure inferences over TCP ({})", ctx.ep.link_descriptor());
    println!("  secure accuracy   : {secure_correct}/{n}");
    println!(
        "  payload traffic   : {:.3} MiB  (wire: {:.3} MiB out, {:.3} MiB in, incl. framing)",
        total_bytes as f64 / (1024.0 * 1024.0),
        wire_tx as f64 / (1024.0 * 1024.0),
        wire_rx as f64 / (1024.0 * 1024.0),
    );
    println!(
        "  wall-clock        : {:.2} s total, {:.2} s per inference",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / n as f64
    );

    if obs_on {
        // Wire-level byte gauges (framing included) alongside the session
        // counters the reliability layer recorded during the run.
        tcp.publish_wire_gauges(&metrics);
        #[allow(clippy::cast_possible_truncation)] // party index is 0 or 1
        let pid = id.index() as u32;
        let spans = tracer.snapshot();
        let parties = [(pid, &spans[..])];
        let report = CostReport::from_spans(&parties);
        let table = report.render();
        println!("\nper-layer cost report ({n} inference(s), this party only):\n{table}");
        let key = format!("party{pid}");
        let metrics_doc = Json::obj(vec![(key.as_str(), metrics.snapshot().to_json())]);
        if let Some(dir) = &args.trace {
            write_artifacts(dir, &chrome_trace(&parties), &metrics_doc, &table, log)?;
        }
        if args.metrics {
            println!("{}", metrics_doc.to_string_pretty());
        }
    }
    Ok(())
}
