//! Quickstart: train a small CNN, quantize it, and run one private
//! two-party inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aq2pnn::sim::run_two_party;
use aq2pnn::ProtocolConfig;
use aq2pnn_nn::data::SyntheticVision;
use aq2pnn_nn::float::FloatNet;
use aq2pnn_nn::quant::{QuantConfig, QuantModel};
use aq2pnn_nn::tensor::argmax_i64;
use aq2pnn_nn::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Model provider side (plaintext domain): train and quantize. ----
    println!("training tiny CNN on a synthetic 4-class dataset…");
    let data = SyntheticVision::tiny(4, 42);
    let mut net = FloatNet::init(&zoo::tiny_cnn(4), 7)?;
    net.train_epochs(&data, 4, 8, 0.05);
    let float_acc = net.accuracy(data.test());
    let model = QuantModel::quantize(&net, &data.calibration(32), &QuantConfig::int8())?;
    println!(
        "float accuracy: {:.1}%  (int8 quantized: {:.1}%)",
        100.0 * float_acc,
        100.0 * model.accuracy(data.test())
    );

    // ---- Joint: one private inference at the paper's 16-bit setting. ----
    let cfg = ProtocolConfig::paper(16);
    let sample = &data.test()[0];
    let run = run_two_party(&model, &cfg, &sample.image, 0)?;
    println!("\nsecure inference (Q1 = 2^{}, Q2 = 2^{}):", cfg.q1_bits, cfg.q2_bits);
    println!("  logits     : {:?}", run.logits);
    println!("  prediction : class {}  (true label {})", argmax_i64(&run.logits), sample.label);
    println!(
        "  traffic    : user sent {} B, provider sent {} B ({:.3} MiB total)",
        run.user_stats.bytes_sent,
        run.provider_stats.bytes_sent,
        (run.user_stats.total_bytes()) as f64 / (1024.0 * 1024.0),
    );
    println!("  rounds     : {}", run.user_stats.rounds + run.provider_stats.rounds);

    // Communication by operator class — the Table 5 view.
    println!("\nper-phase traffic (user side):");
    for (phase, st) in &run.user_stats.phases {
        println!("  {phase:<12} {:>8} B", st.total_bytes());
    }
    Ok(())
}
