//! Reproduction of paper Fig. 3: the 2PC-MMAC worked example.
//!
//! A `(BLOCK_IN, BLOCK_OUT) = (4, 4)` matrix multiply-accumulate is
//! evaluated in the plaintext domain and in the ciphertext domain
//! (AS-GEMM over additive shares with a Beaver triple), then the recovered
//! ciphertext result is checked against the plaintext one — exactly the
//! ①→②→③ flow in the figure.
//!
//! ```sh
//! cargo run --release --example mmac_walkthrough
//! ```

use aq2pnn::gemm::secure_matmul;
use aq2pnn::sim::run_pair;
use aq2pnn::ProtocolConfig;
use aq2pnn_ring::RingTensor;
use aq2pnn_sharing::beaver::ring_matmul;
use aq2pnn_sharing::{AShare, PartyId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ProtocolConfig::paper(16);
    let ring = cfg.q1();
    println!("ring: {ring} (paper Definition 1)\n");

    // A 1x4 input broadcast against a 4x4 weight block, like Fig. 3.
    let in_vals: Vec<i64> = vec![2, -1, 3, 4];
    let w_vals: Vec<i64> = vec![
        1, 2, -1, 0, //
        0, 1, 2, -2, //
        3, -1, 1, 1, //
        2, 0, 0, 1,
    ];
    let input = RingTensor::from_signed(ring, vec![1, 4], &in_vals)?;
    let weight = RingTensor::from_signed(ring, vec![4, 4], &w_vals)?;

    // --- Plaintext domain (green ①/② in the figure). ---
    let plain = ring_matmul(&input, &weight)?;
    println!("plaintext IN ⊗ W  = {:?}", plain.to_signed());

    // --- Ciphertext domain (orange ①/②). ---
    let mut rng = StdRng::seed_from_u64(1);
    let (in0, in1) = AShare::share(&input, &mut rng);
    let (w0, w1) = AShare::share(&weight, &mut rng);
    println!("party 0 IN share  = {:?}", in0.as_tensor().as_slice());
    println!("party 1 IN share  = {:?}", in1.as_tensor().as_slice());

    let (o0, o1) = run_pair(&cfg, move |ctx| {
        let (x, w) = match ctx.id {
            PartyId::User => (in0.clone(), w0.clone()),
            PartyId::ModelProvider => (in1.clone(), w1.clone()),
        };
        secure_matmul(ctx, &x, &w).expect("gemm runs")
    });
    println!("party 0 OUT share = {:?}", o0.as_tensor().as_slice());
    println!("party 1 OUT share = {:?}", o1.as_tensor().as_slice());

    // --- Recovery check (orange ③): rec(⟦O⟧) = (O_i + O_j) mod Q. ---
    let recovered = AShare::recover(&o0, &o1)?;
    println!("rec(⟦OUT⟧)        = {:?}", recovered.to_signed());
    assert_eq!(recovered, plain, "2PC-MMAC must match the plaintext MMAC");
    println!("\n✓ ciphertext-domain MMAC matches the plaintext domain (Fig. 3 check)");
    Ok(())
}
