//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, integer/float `gen`/`gen_range` sampling, and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! Determinism only needs to hold *within* this workspace — both parties of
//! the 2PC simulator derive their correlated material from these streams —
//! so the concrete generators do not need to match upstream `rand` output.

/// A low-level random number generator: the raw entropy interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator seedable from a 64-bit value.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the `Standard`
/// distribution of upstream `rand`).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `0..span` (`span` ≤ 2^64) via fixed-point
/// multiplication. The ≤ 2^-64 bias is irrelevant for this workspace.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    (u128::from(rng.next_u64()) * span) >> 64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic workhorse generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[allow(clippy::cast_possible_truncation)]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3u32..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75001).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = draw(&mut rng);
    }
}
