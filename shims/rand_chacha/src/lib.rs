//! Offline stand-in for `rand_chacha`: [`ChaCha20Rng`] implemented with a
//! genuine ChaCha20 block function (IETF constants, 20 rounds) behind the
//! workspace's `rand` traits. Output streams are deterministic per seed,
//! which is all the 2PC simulator's correlated-randomness derivation needs;
//! they are not guaranteed to match upstream `rand_chacha` byte-for-byte.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha20-based generator.
#[derive(Clone, Debug)]
pub struct ChaCha20Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        #[allow(clippy::cast_possible_truncation)]
        {
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
        }
        // Words 14/15 (nonce) stay zero: one stream per key.
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, &init) in state.iter_mut().zip(&initial) {
            *w = w.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha20Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key via SplitMix64.
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            #[allow(clippy::cast_possible_truncation)]
            {
                pair[0] = z as u32;
                pair[1] = (z >> 32) as u32;
            }
        }
        ChaCha20Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha20Rng::seed_from_u64(42);
        let mut b = ChaCha20Rng::seed_from_u64(42);
        let mut c = ChaCha20Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn clone_continues_the_stream_identically() {
        let mut a = ChaCha20Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn block_function_is_stable_and_counter_sensitive() {
        let mut rng = ChaCha20Rng::seed_from_u64(0);
        rng.counter = 1;
        rng.refill();
        let first = rng.buf;
        rng.counter = 1;
        rng.refill();
        let again = rng.buf;
        rng.counter = 2;
        rng.refill();
        assert_eq!(first, again);
        assert_ne!(first, rng.buf);
    }
}
