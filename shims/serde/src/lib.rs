//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on plain-data types — nothing actually serializes through serde traits —
//! so this shim provides the two derive macros as no-ops. When a future PR
//! needs real (de)serialization, replace this shim with the real crate or
//! emit trait impls here.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
