//! Offline stand-in for the `bytes` crate: an immutable, cheaply-clonable
//! byte buffer covering the subset the transport layer uses (`from`,
//! `from_static`, `Deref<Target = [u8]>`).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer; clones share the underlying storage.
#[derive(Clone)]
pub struct Bytes(Inner);

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Owned(Arc<[u8]>),
}

impl Bytes {
    /// Wraps a static byte slice without copying.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Inner::Static(bytes))
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Inner::Static(s) => s,
            Inner::Owned(o) => o,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Inner::Owned(v.into()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn static_variant() {
        let b = Bytes::from_static(b"hey");
        assert_eq!(&b[..], b"hey");
    }
}
