//! Vendored miniature of the `loom` model checker.
//!
//! This workspace has no registry access, so instead of the real `loom`
//! crate we vendor a small stateless model checker with the same API
//! surface the `aq2pnn` crates need: `loom::model`, `loom::thread`,
//! and `loom::sync::{Arc, Mutex, Condvar, atomic}`.
//!
//! # How it works
//!
//! `model(f)` runs the closure repeatedly, once per distinct thread
//! interleaving. Every execution runs the model's threads as real OS
//! threads under a **token-passing scheduler**: exactly one model
//! thread is runnable at any instant, and every synchronization
//! operation (lock acquire, lock release, condvar wait/notify, atomic
//! access, spawn, join) is a *scheduling point* where the scheduler
//! consults a replayable decision vector to pick the next thread. The
//! decision vector is explored depth-first: after each execution the
//! last decision with untried alternatives is advanced, exactly like
//! CHESS/loom branch backtracking, until the space is exhausted.
//!
//! Fidelity notes (vs. real loom):
//! - Memory is sequentially consistent: all atomic orderings are
//!   treated as `SeqCst`. This finds interleaving bugs (deadlocks,
//!   lost wakeups, ordering violations) but not weak-memory bugs.
//! - Condvars have no spurious wakeups; `notify_one` *is* a branch
//!   point over the waiter set, and a notify with no waiters is lost
//!   (so lost-wakeup bugs are modeled faithfully).
//! - A **preemption bound** (default 2, `LOOM_MAX_PREEMPTIONS`) caps
//!   involuntary context switches per execution, which is what makes
//!   exhaustive exploration tractable; voluntary switches (blocking)
//!   are never bounded. `LOOM_MAX_ITERATIONS` (default 1,000,000)
//!   is a hard cap on explored executions.
//!
//! Failures: a panic in any model thread, or a state where no thread
//! is runnable but some are blocked (deadlock / lost wakeup), aborts
//! the run and panics out of `model()` with the execution count.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, PoisonError,
};

/// Number of executions explored by the most recent [`model`] call.
pub fn explored() -> u64 {
    last_explored().lock().unwrap_or_else(PoisonError::into_inner).unwrap_or(0)
}

fn last_explored() -> &'static StdMutex<Option<u64>> {
    static CELL: OnceLock<StdMutex<Option<u64>>> = OnceLock::new();
    CELL.get_or_init(|| StdMutex::new(None))
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedMutex(usize),
    BlockedCond(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    alternatives: usize,
}

struct Sched {
    threads: Vec<TState>,
    active: usize,
    live: usize,
    mutexes: Vec<Option<usize>>,
    cond_waiters: Vec<Vec<usize>>,
    path: Vec<Choice>,
    depth: usize,
    preemptions_left: u32,
    abort: bool,
    abort_msg: Option<String>,
    done: bool,
}

struct Shared {
    m: StdMutex<Sched>,
    cv: StdCondvar,
}

type Ctx = (std::sync::Arc<Shared>, usize);

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(sh: std::sync::Arc<Shared>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sh, id)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

fn lock_sched(sh: &Shared) -> StdMutexGuard<'_, Sched> {
    sh.m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Draw the next decision: `n` alternatives, replaying the recorded
/// path first, then extending it with choice 0.
fn next_choice(g: &mut Sched, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    if g.depth < g.path.len() {
        let c = g.path[g.depth];
        assert!(
            c.alternatives == n,
            "loom: schedule replay diverged ({} alternatives recorded, {n} now) — the model is non-deterministic",
            c.alternatives
        );
        g.depth += 1;
        c.chosen
    } else {
        g.path.push(Choice { chosen: 0, alternatives: n });
        g.depth += 1;
        0
    }
}

/// Pick the next thread to run. `me_runnable` says whether the caller
/// may keep running (a *preemptive* switch point) or is blocking /
/// finishing (a *voluntary* switch, never counted against the bound).
/// Panics on deadlock. Sets `g.active`.
fn pick_next(sh: &Shared, g: &mut Sched, me: usize, me_runnable: bool) {
    let mut opts: Vec<usize> = Vec::new();
    if me_runnable {
        opts.push(me);
    }
    for (i, st) in g.threads.iter().enumerate() {
        if i != me && *st == TState::Runnable {
            opts.push(i);
        }
    }
    if opts.is_empty() {
        if g.live == 0 {
            g.done = true;
            sh.cv.notify_all();
            return;
        }
        let states: Vec<String> =
            g.threads.iter().enumerate().map(|(i, s)| format!("t{i}={s:?}")).collect();
        let msg =
            format!("deadlock: no runnable thread, {} still live [{}]", g.live, states.join(", "));
        g.abort = true;
        g.abort_msg = Some(msg.clone());
        sh.cv.notify_all();
        panic!("loom: {msg}");
    }
    let n = if me_runnable && g.preemptions_left == 0 { 1 } else { opts.len() };
    let idx = next_choice(g, n);
    let chosen = opts[idx];
    if me_runnable && chosen != me {
        g.preemptions_left -= 1;
    }
    g.active = chosen;
}

/// Park until the scheduler hands this thread the token (or the model
/// aborts, in which case unwind).
fn wait_token<'a>(
    sh: &'a Shared,
    mut g: StdMutexGuard<'a, Sched>,
    me: usize,
) -> StdMutexGuard<'a, Sched> {
    while g.active != me {
        if g.abort {
            drop(g);
            panic!("loom: model aborted");
        }
        g = sh.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    g
}

/// A preemptive scheduling point: the caller stays runnable but other
/// runnable threads may be scheduled instead (bounded by the
/// preemption budget).
fn switch(sh: &Shared, me: usize) {
    let mut g = lock_sched(sh);
    if g.abort {
        drop(g);
        panic!("loom: model aborted");
    }
    pick_next(sh, &mut g, me, true);
    if g.active != me {
        sh.cv.notify_all();
        let _g = wait_token(sh, g, me);
    }
}

fn maybe_switch() {
    if let Some((sh, me)) = ctx() {
        switch(&sh, me);
    }
}

fn finish_thread(sh: &Shared, me: usize, panicked: bool) {
    let mut g = lock_sched(sh);
    g.threads[me] = TState::Finished;
    g.live -= 1;
    for st in &mut g.threads {
        if *st == TState::BlockedJoin(me) {
            *st = TState::Runnable;
        }
    }
    if panicked && !g.abort {
        g.abort = true;
        sh.cv.notify_all();
        return;
    }
    if g.abort {
        sh.cv.notify_all();
        return;
    }
    if g.live == 0 {
        g.done = true;
        sh.cv.notify_all();
        return;
    }
    pick_next(sh, &mut g, me, false);
    sh.cv.notify_all();
}

/// Run `f` under every explored thread interleaving.
///
/// Panics (after printing the execution count) if any execution
/// panics or deadlocks. On success prints the number of distinct
/// executions explored, also available via [`explored`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    // Serialize concurrent `model` calls from the test harness.
    static MODEL_LOCK: StdMutex<()> = StdMutex::new(());
    let _serial = MODEL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);

    let max_preempt: u32 =
        std::env::var("LOOM_MAX_PREEMPTIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let max_iters: u64 =
        std::env::var("LOOM_MAX_ITERATIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);

    let f = std::sync::Arc::new(f);
    let mut path: Vec<Choice> = Vec::new();
    let mut execs: u64 = 0;
    loop {
        execs += 1;
        assert!(
            execs <= max_iters,
            "loom: exceeded LOOM_MAX_ITERATIONS={max_iters} without exhausting the schedule space"
        );
        let sh = std::sync::Arc::new(Shared {
            m: StdMutex::new(Sched {
                threads: vec![TState::Runnable],
                active: 0,
                live: 1,
                mutexes: Vec::new(),
                cond_waiters: Vec::new(),
                path: std::mem::take(&mut path),
                depth: 0,
                preemptions_left: max_preempt,
                abort: false,
                abort_msg: None,
                done: false,
            }),
            cv: StdCondvar::new(),
        });
        let sh_root = sh.clone();
        let fr = f.clone();
        let root = std::thread::Builder::new()
            .name("loom-0".into())
            .spawn(move || {
                set_ctx(sh_root.clone(), 0);
                let r = catch_unwind(AssertUnwindSafe(|| fr()));
                finish_thread(&sh_root, 0, r.is_err());
                clear_ctx();
                if let Err(p) = r {
                    resume_unwind(p);
                }
            })
            .expect("spawn loom root thread");
        {
            let mut g = lock_sched(&sh);
            while !g.done && !g.abort {
                g = sh.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let root_result = root.join();

        let (aborted, abort_msg, final_path) = {
            let mut g = lock_sched(&sh);
            (g.abort, g.abort_msg.take(), std::mem::take(&mut g.path))
        };
        if aborted || root_result.is_err() {
            eprintln!("loom: failing schedule found after {execs} executions");
            if let Some(msg) = abort_msg {
                panic!("loom: {msg} (execution {execs})");
            }
            match root_result {
                Err(p) => resume_unwind(p),
                Ok(()) => panic!("loom: a model thread panicked (execution {execs}; see stderr)"),
            }
        }

        // Depth-first backtrack: advance the deepest decision that
        // still has untried alternatives.
        let mut p = final_path;
        let more = loop {
            match p.pop() {
                None => break false,
                Some(mut c) => {
                    if c.chosen + 1 < c.alternatives {
                        c.chosen += 1;
                        p.push(c);
                        break true;
                    }
                }
            }
        };
        if !more {
            break;
        }
        path = p;
    }
    *last_explored().lock().unwrap_or_else(PoisonError::into_inner) = Some(execs);
    eprintln!("loom: explored {execs} executions");
}

pub mod thread {
    //! Model-aware replacement for `std::thread`.

    use super::{
        ctx, finish_thread, lock_sched, pick_next, set_ctx, switch, wait_token, Shared, TState,
    };
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Model-aware join handle; outside a model it degrades to a plain
    /// `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: Option<std::thread::JoinHandle<T>>,
        model: Option<(std::sync::Arc<Shared>, usize)>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish (a scheduling point inside a
        /// model) and return its result.
        pub fn join(mut self) -> std::thread::Result<T> {
            if let Some((sh, target)) = self.model.take() {
                if let Some((_, me)) = ctx() {
                    let mut g = lock_sched(&sh);
                    loop {
                        if g.abort || g.threads[target] == TState::Finished {
                            break;
                        }
                        g.threads[me] = TState::BlockedJoin(target);
                        pick_next(&sh, &mut g, me, false);
                        sh.cv.notify_all();
                        g = wait_token(&sh, g, me);
                    }
                }
            }
            self.inner.take().expect("join handle consumed").join()
        }
    }

    /// Spawn a model thread (a scheduling point: the child may be
    /// scheduled before the parent continues).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some((sh, me)) => {
                let id = {
                    let mut g = lock_sched(&sh);
                    g.threads.push(TState::Runnable);
                    g.live += 1;
                    g.threads.len() - 1
                };
                let sh_child = sh.clone();
                let h = std::thread::Builder::new()
                    .name(format!("loom-{id}"))
                    .spawn(move || {
                        set_ctx(sh_child.clone(), id);
                        {
                            let g = lock_sched(&sh_child);
                            let _g = wait_token(&sh_child, g, id);
                        }
                        let r = catch_unwind(AssertUnwindSafe(f));
                        finish_thread(&sh_child, id, r.is_err());
                        super::clear_ctx();
                        match r {
                            Ok(t) => t,
                            Err(p) => resume_unwind(p),
                        }
                    })
                    .expect("spawn loom thread");
                switch(&sh, me);
                JoinHandle { inner: Some(h), model: Some((sh, id)) }
            }
            None => JoinHandle { inner: Some(std::thread::spawn(f)), model: None },
        }
    }

    /// Voluntary scheduling point.
    pub fn yield_now() {
        super::maybe_switch();
    }
}

pub mod sync {
    //! Model-aware replacements for `std::sync` primitives, API-compatible
    //! with their `std` counterparts so callers can swap them by `use`.

    pub use std::sync::Arc;
    use std::sync::{LockResult, PoisonError};

    use super::{ctx, lock_sched, next_choice, pick_next, switch, wait_token, Shared, TState};

    /// Model-aware mutex. Data lives in an inner `std` mutex (which the
    /// scheduler keeps uncontended); blocking and wakeups are virtual.
    pub struct Mutex<T> {
        id: std::sync::OnceLock<usize>,
        data: std::sync::Mutex<T>,
    }

    /// Guard for [`Mutex`]; releasing it is a scheduling point.
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
        model: Option<(Arc<Shared>, usize)>,
    }

    impl<T> Mutex<T> {
        /// Create a new mutex holding `t`.
        pub fn new(t: T) -> Self {
            Self { id: std::sync::OnceLock::new(), data: std::sync::Mutex::new(t) }
        }

        fn mid(&self, sh: &Shared) -> usize {
            *self.id.get_or_init(|| {
                let mut g = lock_sched(sh);
                g.mutexes.push(None);
                g.mutexes.len() - 1
            })
        }

        /// Acquire the mutex (a scheduling point before the acquire).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match ctx() {
                Some((sh, me)) => {
                    let m = self.mid(&sh);
                    switch(&sh, me);
                    let mut g = lock_sched(&sh);
                    loop {
                        if g.abort {
                            drop(g);
                            panic!("loom: model aborted");
                        }
                        if g.mutexes[m].is_none() {
                            g.mutexes[m] = Some(me);
                            break;
                        }
                        g.threads[me] = TState::BlockedMutex(m);
                        pick_next(&sh, &mut g, me, false);
                        sh.cv.notify_all();
                        g = wait_token(&sh, g, me);
                    }
                    drop(g);
                    let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard { inner: Some(inner), lock: self, model: Some((sh, me)) })
                }
                None => {
                    let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard { inner: Some(inner), lock: self, model: None })
                }
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard live")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard live")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock first, then the virtual one.
            self.inner.take();
            if let Some((sh, me)) = self.model.take() {
                let m = *self.lock.id.get().expect("registered mutex");
                {
                    let mut g = lock_sched(&sh);
                    if g.abort {
                        return;
                    }
                    g.mutexes[m] = None;
                    for st in &mut g.threads {
                        if *st == TState::BlockedMutex(m) {
                            *st = TState::Runnable;
                        }
                    }
                }
                // A release is a scheduling point — unless we are
                // already unwinding, in which case scheduling from a
                // destructor could double-panic.
                if !std::thread::panicking() {
                    switch(&sh, me);
                }
            }
        }
    }

    /// Model-aware condvar: waiter lists are virtual, `notify_one` is
    /// a branch point over the waiters, and un-witnessed notifies are
    /// lost (modeling lost wakeups).
    pub struct Condvar {
        id: std::sync::OnceLock<usize>,
        real: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// Create a new condvar.
        pub fn new() -> Self {
            Self { id: std::sync::OnceLock::new(), real: std::sync::Condvar::new() }
        }

        fn cid(&self, sh: &Shared) -> usize {
            *self.id.get_or_init(|| {
                let mut g = lock_sched(sh);
                g.cond_waiters.push(Vec::new());
                g.cond_waiters.len() - 1
            })
        }

        /// Atomically release the guard and wait for a notification,
        /// then re-acquire.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match guard.model.clone() {
                Some((sh, me)) => {
                    let cv = self.cid(&sh);
                    let m = *guard.lock.id.get().expect("guard from model mutex");
                    guard.inner.take();
                    let mut g = lock_sched(&sh);
                    if g.abort {
                        drop(g);
                        panic!("loom: model aborted");
                    }
                    g.cond_waiters[cv].push(me);
                    g.mutexes[m] = None;
                    for st in &mut g.threads {
                        if *st == TState::BlockedMutex(m) {
                            *st = TState::Runnable;
                        }
                    }
                    g.threads[me] = TState::BlockedCond(cv);
                    pick_next(&sh, &mut g, me, false);
                    sh.cv.notify_all();
                    g = wait_token(&sh, g, me);
                    // Notified: re-acquire the mutex.
                    loop {
                        if g.abort {
                            drop(g);
                            panic!("loom: model aborted");
                        }
                        if g.mutexes[m].is_none() {
                            g.mutexes[m] = Some(me);
                            break;
                        }
                        g.threads[me] = TState::BlockedMutex(m);
                        pick_next(&sh, &mut g, me, false);
                        sh.cv.notify_all();
                        g = wait_token(&sh, g, me);
                    }
                    drop(g);
                    guard.inner =
                        Some(guard.lock.data.lock().unwrap_or_else(PoisonError::into_inner));
                    Ok(guard)
                }
                None => {
                    let std_guard = guard.inner.take().expect("guard live");
                    let back = self.real.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
                    guard.inner = Some(back);
                    Ok(guard)
                }
            }
        }

        /// Wake one waiter; *which* one is a model branch point. With
        /// no waiters the notification is lost.
        pub fn notify_one(&self) {
            match ctx() {
                Some((sh, me)) => {
                    switch(&sh, me);
                    let cv = self.cid(&sh);
                    let mut g = lock_sched(&sh);
                    if g.abort {
                        drop(g);
                        panic!("loom: model aborted");
                    }
                    if !g.cond_waiters[cv].is_empty() {
                        let n = g.cond_waiters[cv].len();
                        let idx = next_choice(&mut g, n);
                        let t = g.cond_waiters[cv].remove(idx);
                        g.threads[t] = TState::Runnable;
                    }
                }
                None => self.real.notify_one(),
            }
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            match ctx() {
                Some((sh, me)) => {
                    switch(&sh, me);
                    let cv = self.cid(&sh);
                    let mut g = lock_sched(&sh);
                    if g.abort {
                        drop(g);
                        panic!("loom: model aborted");
                    }
                    let waiters = std::mem::take(&mut g.cond_waiters[cv]);
                    for t in waiters {
                        g.threads[t] = TState::Runnable;
                    }
                }
                None => self.real.notify_all(),
            }
        }
    }

    pub mod atomic {
        //! Model-aware atomics: every access is a scheduling point;
        //! all orderings are modeled as `SeqCst`.

        pub use std::sync::atomic::Ordering;

        use super::super::maybe_switch;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-aware atomic; every access is a scheduling point.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    /// Create a new atomic holding `v`.
                    pub fn new(v: $prim) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    /// Atomic load (scheduling point).
                    pub fn load(&self, o: Ordering) -> $prim {
                        maybe_switch();
                        self.v.load(o)
                    }

                    /// Atomic store (scheduling point).
                    pub fn store(&self, val: $prim, o: Ordering) {
                        maybe_switch();
                        self.v.store(val, o);
                    }

                    /// Atomic swap (scheduling point).
                    pub fn swap(&self, val: $prim, o: Ordering) -> $prim {
                        maybe_switch();
                        self.v.swap(val, o)
                    }
                }
            };
        }

        model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        impl AtomicUsize {
            /// Atomic add (scheduling point), returning the prior value.
            pub fn fetch_add(&self, val: usize, o: Ordering) -> usize {
                maybe_switch();
                self.v.fetch_add(val, o)
            }
        }

        impl AtomicU64 {
            /// Atomic add (scheduling point), returning the prior value.
            pub fn fetch_add(&self, val: u64, o: Ordering) -> u64 {
                maybe_switch();
                self.v.fetch_add(val, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_explores_multiple_schedules() {
        super::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let h = super::thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join().expect("child join");
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        assert!(super::explored() > 1, "two racing increments must yield several schedules");
    }

    #[test]
    fn model_mutex_excludes() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = m.clone();
            let h = super::thread::spawn(move || {
                let mut g = m2.lock().expect("lock");
                let v = *g;
                *g = v + 1;
            });
            {
                let mut g = m.lock().expect("lock");
                let v = *g;
                *g = v + 1;
            }
            h.join().expect("join");
            assert_eq!(*m.lock().expect("lock"), 2);
        });
    }

    #[test]
    fn model_condvar_handshake() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = pair.clone();
            let h = super::thread::spawn(move || {
                let mut flag = pair2.0.lock().expect("lock");
                *flag = true;
                pair2.1.notify_one();
            });
            {
                let mut flag = pair.0.lock().expect("lock");
                while !*flag {
                    flag = pair.1.wait(flag).expect("wait");
                }
            }
            h.join().expect("join");
        });
    }

    #[test]
    fn model_detects_deadlock() {
        let r = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                // Wait with no notifier in sight: must be reported as
                // a deadlock, not hang.
                let g = pair.0.lock().expect("lock");
                let _g = pair.1.wait(g).expect("wait");
            });
        });
        let err = r.expect_err("un-notified wait must fail the model");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "expected deadlock diagnostic, got: {msg}");
    }
}
