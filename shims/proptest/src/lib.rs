//! Offline stand-in for `proptest`.
//!
//! Provides the same surface syntax the workspace's property tests use —
//! `proptest! { #[test] fn p(x in strategy) { … } }`, `any::<T>()`, range
//! and tuple strategies, `prop_map`/`prop_flat_map`,
//! `proptest::collection::vec`, `prop_assert*` — implemented as plain
//! random sampling without shrinking. Failures report the failing case's
//! inputs via the assertion message; reproduce by rerunning with the same
//! `PROPTEST_SEED` (cases are deterministic per test name by default).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each produced value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws a value from the type's full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy over a type's full domain.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<u64>()` etc.).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: core::marker::PhantomData }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident => $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A => 0);
        (A => 0, B => 1);
        (A => 0, B => 1, C => 2);
        (A => 0, B => 1, C => 2, D => 3);
        (A => 0, B => 1, C => 2, D => 3, E => 4);
        (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The element-count specification [`vec`] accepts: a fixed size or a
    /// half-open range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-produced values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases to run per property.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Cases sampled per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running exactly `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            Config { cases }
        }
    }

    /// A failed property case; carries the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runs one property case (keeps the `proptest!` expansion free of
    /// immediately-invoked closures).
    ///
    /// # Errors
    ///
    /// Propagates the case's failure.
    pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(f: F) -> Result<(), TestCaseError> {
        f()
    }

    /// Deterministic per-test RNG; override globally with `PROPTEST_SEED`.
    #[must_use]
    pub fn rng_for(test_name: &str) -> StdRng {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x9027_59f1_bb5e_a992);
        let mut h = base;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// optional formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Declares property tests: each function's arguments are drawn from the
/// given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome = $crate::test_runner::run_case(
                    || { $body ::core::result::Result::Ok(()) },
                );
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n{}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10).prop_flat_map(|a| (Just(a), a..a + 5))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y), "y = {y}");
        }

        #[test]
        fn flat_map_dependency_holds((a, b) in pair()) {
            prop_assert!(b >= a && b < a + 5);
            prop_assert_ne!(b, a + 5);
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn map_applies(v in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_header_accepted(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    #[allow(unnameable_test_items)] // the nested #[test] exists only to be called directly
    fn failing_property_panics_with_context() {
        proptest! {
            #[test]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
