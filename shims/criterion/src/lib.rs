//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use
//! (`Criterion::bench_function`, `bench_with_input`, `benchmark_group`,
//! `criterion_group!`/`criterion_main!`) with a min-of-batches wall-clock
//! estimator. Every completed measurement is also pushed into a process-wide
//! registry ([`all_results`]) so benches can emit machine-readable reports
//! (e.g. `BENCH_kernels.json`) without scraping stdout.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or `function/param`).
    pub name: String,
    /// Best observed nanoseconds per iteration (min over batches).
    pub ns_per_iter: f64,
    /// Iterations per timed batch.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Snapshot of every measurement recorded so far in this process.
#[must_use]
pub fn all_results() -> Vec<BenchResult> {
    RESULTS.lock().expect("results registry").clone()
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
    /// Total time budget for the timed batches.
    budget: Duration,
}

impl Bencher {
    /// Measures `routine`: one warmup call sizes the batch, then the best
    /// of three batches is kept.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = self.budget / 3;
        let iters = (per_batch.as_nanos() / warm.as_nanos()).clamp(1, 100_000) as u64;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
        }
        self.ns_per_iter = best;
        self.iters = iters;
    }
}

fn run_bench(name: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0, iters: 0, budget };
    f(&mut b);
    let result = BenchResult { name: name.to_string(), ns_per_iter: b.ns_per_iter, iters: b.iters };
    println!(
        "bench {:<48} {:>14.1} ns/iter  ({} iters/batch)",
        result.name, result.ns_per_iter, result.iters
    );
    RESULTS.lock().expect("results registry").push(result);
}

/// Benchmark id combining a function name and an input parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Per-bench time budget; override with CRITERION_BUDGET_MS.
        let ms =
            std::env::var("CRITERION_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(150);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Runs a named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.budget, &mut f);
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&id.id, self.budget, &mut |b| f(b, input));
        self
    }

    /// Starts a named group; member benches are prefixed with its name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keys batch sizing off the
    /// time budget instead of an explicit sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_bench(&full, self.criterion.budget, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_registers() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test_noop", |b| b.iter(|| 1 + 1));
        let results = all_results();
        let r = results.iter().find(|r| r.name == "shim/self_test_noop").unwrap();
        assert!(r.ns_per_iter >= 0.0);
        assert!(r.iters >= 1);
    }

    #[test]
    fn group_prefixes_names() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
        assert!(all_results().iter().any(|r| r.name == "grp/inner"));
    }
}
