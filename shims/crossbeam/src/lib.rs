//! Offline stand-in for `crossbeam`: the `channel::unbounded` MPMC channel
//! subset the transport layer uses, built on `std::sync` primitives.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel. Cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloning adds a consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when every [`Receiver`] has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can fail.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// [`Sender`] has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
        }

        /// Dequeues the next message, blocking for at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the channel stays empty past
        /// the deadline; [`RecvTimeoutError::Disconnected`] when it is
        /// empty and every [`Sender`] has been dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(99).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }
}
