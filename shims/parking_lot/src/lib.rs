//! Offline stand-in for `parking_lot`: non-poisoning [`Mutex`] and
//! [`Condvar`] layered over `std::sync`. Poison errors are swallowed
//! (matching parking_lot's no-poisoning semantics), which is sound here
//! because a panicked protocol thread aborts the whole simulated session.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns an error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while the thread is parked, then put the reacquired guard back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and parks the thread; the lock
    /// is reacquired (into the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let reacquired = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_rendezvous() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            true
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }
}
